// packet_pool.hpp — slab storage for in-flight packets.
//
// The zero-allocation datapath contract (docs/DATAPATH.md): a packet
// entering a link is copied once into a pool slot and is addressed by a
// 4-byte PacketHandle from then on. Queues buffer handles, delivery
// events carry handles, and the slot is recycled when the packet reaches
// the far end (or is dropped). Slots live in fixed-size chunks that are
// never freed or moved, so a `Packet&` obtained from get() stays valid
// across acquire() calls — agents may send new packets while holding a
// reference to the one being delivered.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.hpp"
#include "util/units.hpp"

namespace phi::sim {

/// Index of a pool slot. Handles are plain indices (no generation tag):
/// the datapath has single ownership per handle — whoever holds it either
/// passes it on or releases it exactly once.
using PacketHandle = std::uint32_t;
inline constexpr PacketHandle kNullPacket = 0xFFFF'FFFFu;

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Copy `p` into a recycled (or fresh) slot. Amortized allocation-free:
  /// a new chunk is mapped only when the in-flight high-water mark grows.
  PacketHandle acquire(const Packet& p) {
    const PacketHandle h = alloc_slot();
    get(h) = p;
    return h;
  }

  /// Return a slot to the free list. The handle must not be used again.
  void release(PacketHandle h) noexcept {
    assert(h < high_water_);
    free_.push_back(h);
    --in_use_;
  }

  Packet& get(PacketHandle h) noexcept {
    assert(h < high_water_);
    return chunks_[h >> kChunkShift][h & kChunkMask];
  }
  const Packet& get(PacketHandle h) const noexcept {
    assert(h < high_water_);
    return chunks_[h >> kChunkShift][h & kChunkMask];
  }

  /// Hint the prefetcher at the slot behind `h`: the scheduler issues
  /// this while batching due deliveries so the packet bytes are in cache
  /// by the time the destination node reads them.
  void prefetch(PacketHandle h) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (h < high_water_)
      __builtin_prefetch(&chunks_[h >> kChunkShift][h & kChunkMask], 0, 3);
#else
    (void)h;
#endif
  }

  /// Live handles (acquired, not yet released).
  std::size_t in_use() const noexcept { return in_use_; }
  /// Slots ever created; the steady-state bound on pool memory.
  std::size_t capacity() const noexcept {
    return chunks_.size() << kChunkShift;
  }

 private:
  static constexpr std::uint32_t kChunkShift = 10;  // 1024 packets per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  PacketHandle alloc_slot() {
    ++in_use_;
    if (!free_.empty()) {
      const PacketHandle h = free_.back();
      free_.pop_back();
      return h;
    }
    if (high_water_ == capacity())
      chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
    return high_water_++;
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;  ///< stable slot storage
  std::vector<PacketHandle> free_;                 ///< recycled slots, LIFO
  PacketHandle high_water_ = 0;
  std::size_t in_use_ = 0;
};

/// A pool handle as queues buffer it: alongside the metadata the dequeue
/// hot path needs (byte accounting, queueing-delay measurement) so that
/// draining a queue touches no packet memory at all.
struct Queued {
  PacketHandle handle = kNullPacket;
  std::int32_t size_bytes = 0;
  util::Time enqueued_at = 0;  ///< when the queue accepted the packet
};

}  // namespace phi::sim
