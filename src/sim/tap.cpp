#include "sim/tap.hpp"

#include "util/table.hpp"

namespace phi::sim {

FlowTap::FlowTap(Scheduler& sched, Node& node, FlowId flow, Agent* inner)
    : sched_(sched), node_(node), flow_(flow), inner_(inner) {
  node_.attach(flow_, this);
}

FlowTap::~FlowTap() {
  if (inner_ != nullptr) {
    node_.attach(flow_, inner_);
  } else {
    node_.detach(flow_);
  }
}

void FlowTap::on_packet(const Packet& p) {
  ++seen_;
  if (!filter_ || filter_(p)) {
    Record r;
    r.at = sched_.now();
    r.seq = p.seq;
    r.ack = p.ack;
    r.is_ack = p.is_ack;
    r.ce = p.ce;
    r.size_bytes = p.size_bytes;
    records_.push_back(r);
  }
  if (inner_ != nullptr) inner_->on_packet(p);
}

bool FlowTap::write_csv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records_.size());
  for (const auto& r : records_) {
    rows.push_back({util::fmt_g(util::to_seconds(r.at)),
                    std::to_string(r.seq), std::to_string(r.ack),
                    std::string(r.is_ack ? "1" : "0"),
                    std::string(r.ce ? "1" : "0"),
                    std::to_string(r.size_bytes)});
  }
  return util::write_csv(path, {"t_s", "seq", "ack", "is_ack", "ce", "bytes"},
                         rows);
}

}  // namespace phi::sim
