#include "sim/tap.hpp"

#include <fstream>

namespace phi::sim {

FlowTap::FlowTap(Scheduler& sched, Node& node, FlowId flow, Agent* inner)
    : sched_(sched), node_(node), flow_(flow), inner_(inner) {
  node_.attach(flow_, this);
}

FlowTap::~FlowTap() {
  if (inner_ != nullptr) {
    node_.attach(flow_, inner_);
  } else {
    node_.detach(flow_);
  }
}

void FlowTap::on_packet(const Packet& p) {
  ++seen_;
  if (!filter_ || filter_(p)) {
    Record r;
    r.at = sched_.now();
    r.seq = p.seq;
    r.ack = p.ack;
    r.is_ack = p.is_ack;
    r.ce = p.ce;
    r.size_bytes = p.size_bytes;
    records_.push_back(r);
  }
  if (inner_ != nullptr) inner_->on_packet(p);
}

bool FlowTap::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "t_s,seq,ack,is_ack,ce,bytes\n";
  for (const auto& r : records_) {
    f << util::to_seconds(r.at) << ',' << r.seq << ',' << r.ack << ','
      << (r.is_ack ? 1 : 0) << ',' << (r.ce ? 1 : 0) << ',' << r.size_bytes
      << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace phi::sim
