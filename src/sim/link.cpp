#include "sim/link.hpp"

#include "sim/node.hpp"
#include "sim/sharding.hpp"
#include "util/small_fn.hpp"

namespace phi::sim {

// The fast path exists so delivery events stay inline in SmallFn-sized
// storage; if an equivalent lambda capture could not, the design contract
// of docs/DATAPATH.md is broken.
namespace {
struct DeliveryCapture {
  Link* link;
  PacketHandle packet;
};
static_assert(sizeof(DeliveryCapture) <= util::SmallFn::kInlineBytes,
              "a {Link*, PacketHandle} delivery capture must fit inline "
              "in SmallFn");
}  // namespace

namespace detail {
void link_deliver(Link& link, PacketPool& pool, PacketHandle h) {
  link.complete_delivery(pool, h);
}
void link_deliver_burst(Link& link, PacketPool& pool, const PacketHandle* hs,
                        std::size_t n) {
  link.complete_delivery_burst(pool, hs, n);
}
void link_tx_complete(Link& link) { link.complete_transmission(); }
}  // namespace detail

Link::Link(Scheduler& sched, Node& dst, util::Rate rate,
           util::Duration prop_delay, std::int64_t buffer_bytes,
           std::string name)
    : Link(sched, dst, rate, prop_delay,
           std::make_unique<DropTailDisc>(buffer_bytes), std::move(name)) {}

Link::Link(Scheduler& sched, Node& dst, util::Rate rate,
           util::Duration prop_delay, std::unique_ptr<QueueDisc> queue,
           std::string name)
    : sched_(&sched),
      pool_(&sched.packet_pool()),
      dst_(dst),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      name_(std::move(name)) {
  resolve_telemetry();
}

void Link::resolve_telemetry() {
  const telemetry::Labels labels{
      {"link", name_.empty() ? std::string("unnamed") : name_}};
  auto& reg = telemetry::registry();
  ctr_pkts_ = &reg.counter("sim.link.packets_tx", labels);
  ctr_bytes_ = &reg.counter("sim.link.bytes_tx", labels);
  ctr_enqueued_ = &reg.counter("sim.link.packets_enqueued", labels);
  ctr_drops_ = &reg.counter("sim.link.packets_dropped", labels);
  ctr_outage_drops_ = &reg.counter("sim.link.outage_drops", labels);
  occupancy_gauge_ = &reg.gauge("sim.link.queue_occupancy", labels);
  qdelay_hist_ = &reg.histogram("sim.link.queueing_delay_sample_s", labels);
}

void Link::rebind(Scheduler& sched) {
  sched_ = &sched;
  pool_ = &sched.packet_pool();
  resolve_telemetry();
}

void Link::drop_queued() noexcept {
  for (;;) {
    const Queued next = queue_->dequeue();
    if (next.handle == kNullPacket) return;
    pool_->release(next.handle);
  }
}

void Link::send(const Packet& p) {
  if (!up_) {
    ++outage_drops_;
    ctr_outage_drops_->add();
    telemetry::flight().note(telemetry::Category::kLink, "link.outage_drop",
                             sched_->now(),
                             static_cast<double>(p.flow),
                             static_cast<double>(p.seq));
    if (auto* t = telemetry::tracer();
        t && t->enabled(telemetry::Category::kLink)) {
      t->instant(telemetry::Category::kLink, "link.outage_drop",
                 sched_->now(), {telemetry::targ("link", name_)});
    }
    return;
  }
  const PacketHandle h = pool_->acquire(p);
  if (busy_) {
    if (queue_->enqueue(*pool_, h, sched_->now())) {
      ctr_enqueued_->add();
    } else {
      // The queue disc already accounted the drop in its own stats; the
      // registry counter and trace event make it visible fleet-wide.
      pool_->release(h);
      ctr_drops_->add();
      telemetry::flight().note(telemetry::Category::kLink, "link.drop",
                               sched_->now(), static_cast<double>(p.flow),
                               static_cast<double>(queue_->bytes()));
      if (p.trace != 0) {
        if (auto* sl = telemetry::spans()) {
          sl->point(p.trace, "link.drop", sched_->now(), "seq",
                    static_cast<double>(p.seq), "queue_bytes",
                    static_cast<double>(queue_->bytes()));
        }
      }
      if (auto* t = telemetry::tracer();
          t && t->enabled(telemetry::Category::kLink)) {
        t->instant(
            telemetry::Category::kLink, "link.drop", sched_->now(),
            {telemetry::targ("link", name_),
             telemetry::targ("queue_bytes",
                             static_cast<double>(queue_->bytes()))});
      }
    }
    occupancy_dirty_ = true;
    return;
  }
  start_transmission(h);
}

void Link::start_transmission(PacketHandle h) {
  busy_ = true;
  const Packet& p = pool_->get(h);
  const util::Duration tx = util::transmission_time(p.size_bytes, rate_);
  busy_time_ += tx;
  tx_end_ = sched_->now() + tx;
  bytes_tx_ += static_cast<std::uint64_t>(p.size_bytes);
  ++pkts_tx_;
  ctr_pkts_->add();
  ctr_bytes_->add(static_cast<std::uint64_t>(p.size_bytes));
  // The packet reaches the far end after serialization + propagation
  // (plus optional jitter, which can reorder); the transmitter frees up
  // after serialization alone. Delivery is scheduled first to keep event
  // insertion order identical to the historical lambda-based path.
  const util::Duration extra =
      jitter_ > 0 ? static_cast<util::Duration>(
                        jitter_rng_.uniform() * static_cast<double>(jitter_))
                  : 0;
  // Sampled flows get a transit span covering serialization +
  // propagation (+ jitter); the full duration is known here, before the
  // delivery event even fires, so the span is emitted at schedule time.
  if (p.trace != 0) {
    if (auto* sl = telemetry::spans()) {
      sl->span(p.trace, "link.transit", sched_->now(),
               sched_->now() + tx + prop_delay_ + extra, "seq",
               static_cast<double>(p.seq), "bytes",
               static_cast<double>(p.size_bytes));
    }
  }
  if (boundary_ == nullptr) {
    sched_->schedule_delivery_in(tx + prop_delay_ + extra, *this, h);
  } else {
    // Cut link: the far end lives on another shard. Hand the packet to
    // the boundary channel by value (stamped with its absolute arrival
    // time and a per-shard sequence number for deterministic merging)
    // and release the local pool slot — the consumer re-homes the packet
    // into its own pool at injection. See sim/sharding.hpp.
    detail::boundary_push(*boundary_, sched_->now(),
                          sched_->now() + tx + prop_delay_ + extra, this, p);
    pool_->release(h);
  }
  sched_->schedule_tx_complete_in(tx, *this);
}

void Link::complete_delivery(PacketPool& pool, PacketHandle h) {
  const Packet& p = pool.get(h);
  // Routing visibility for sampled flows: one point per node arrival.
  // Untraced packets (trace == 0, i.e. everything unless a SpanLog is
  // installed) pay a single never-taken branch.
  if (p.trace != 0) {
    if (auto* sl = telemetry::spans()) {
      sl->point(p.trace, "node.deliver", sched_->now(), "node",
                static_cast<double>(dst_.id()), "seq",
                static_cast<double>(p.seq));
    }
  }
  dst_.deliver(p);
  pool.release(h);
}

void Link::complete_delivery_burst(PacketPool& pool, const PacketHandle* hs,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) pool.prefetch(hs[i + 1]);
    const Packet& p = pool.get(hs[i]);
    if (p.trace != 0) {
      if (auto* sl = telemetry::spans()) {
        sl->point(p.trace, "node.deliver", sched_->now(), "node",
                  static_cast<double>(dst_.id()), "seq",
                  static_cast<double>(p.seq));
      }
    }
    dst_.deliver(p);
    pool.release(hs[i]);
  }
}

void Link::complete_transmission() {
  busy_ = false;
  const Queued next = queue_->dequeue();
  if (next.handle == kNullPacket) {
    // Queue drained: push pending stats so gauges/accessors observed
    // between bursts reflect the idle state.
    flush_stats();
    return;
  }
  qdelay_batch_[qdelay_batch_n_++] =
      util::to_seconds(sched_->now() - next.enqueued_at);
  // Queue-residency span for sampled flows: the packet sat in this
  // link's queue from enqueue until the transmitter freed up just now.
  {
    const Packet& qp = pool_->get(next.handle);
    if (qp.trace != 0) {
      if (auto* sl = telemetry::spans()) {
        sl->span(qp.trace, "queue.wait", next.enqueued_at, sched_->now(),
                 "seq", static_cast<double>(qp.seq), "queue_bytes",
                 static_cast<double>(queue_->bytes()));
      }
    }
  }
  occupancy_dirty_ = true;
  if (qdelay_batch_n_ == kStatsBatch) flush_stats();
  start_transmission(next.handle);
}

void Link::flush_stats() const {
  for (std::size_t i = 0; i < qdelay_batch_n_; ++i) {
    const double waited = qdelay_batch_[i];
    qdelay_.add(waited);
    // The mean sees every sample (it feeds goldens); the two streaming
    // quantile estimators get a deterministic 1-in-kQdelaySampleStride
    // subsample — each add costs four marker updates, which dominated the
    // dequeue path when fed per-packet. The phase persists across flushes
    // so the subsample is independent of batch boundaries.
    if (qdelay_sample_phase_++ % kQdelaySampleStride == 0) {
      qdelay_p99_.add(waited);
      qdelay_hist_->observe(waited);
    }
  }
  qdelay_batch_n_ = 0;
  if (occupancy_dirty_) {
    occupancy_gauge_->set(queue_->occupancy());
    occupancy_dirty_ = false;
  }
}

double Link::utilization(util::Time now) const noexcept {
  const util::Duration elapsed = now - stats_since_;
  // Zero-length window — e.g. queried at the exact instant of
  // reset_stats(), including mid-serialization when busy_time_ holds a
  // pro-rated remainder — reads as 0, never 0/0 or x/0.
  if (elapsed <= 0) return 0.0;
  util::Duration busy = busy_time_;
  // busy_time_ is charged in full when serialization starts; don't count
  // the part of an in-flight packet that hasn't happened yet.
  if (busy_ && tx_end_ > now) busy -= tx_end_ - now;
  return static_cast<double>(busy) / static_cast<double>(elapsed);
}

void Link::reset_stats() noexcept {
  flush_stats();
  bytes_tx_ = 0;
  pkts_tx_ = 0;
  const util::Time now = sched_->now();
  // Carry the remainder of an in-flight serialization into the new
  // window: the transmitter will be busy for (tx_end_ - now) of it.
  busy_time_ = (busy_ && tx_end_ > now) ? tx_end_ - now : 0;
  stats_since_ = now;
  qdelay_ = {};
  qdelay_p99_ = util::P2Quantile(0.99);
  qdelay_sample_phase_ = 0;
  queue_->reset_stats();
}

}  // namespace phi::sim
