#include "sim/link.hpp"

#include "sim/node.hpp"

namespace phi::sim {

Link::Link(Scheduler& sched, Node& dst, util::Rate rate,
           util::Duration prop_delay, std::int64_t buffer_bytes,
           std::string name)
    : Link(sched, dst, rate, prop_delay,
           std::make_unique<DropTailDisc>(buffer_bytes), std::move(name)) {}

Link::Link(Scheduler& sched, Node& dst, util::Rate rate,
           util::Duration prop_delay, std::unique_ptr<QueueDisc> queue,
           std::string name)
    : sched_(sched),
      dst_(dst),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      name_(std::move(name)) {
  const telemetry::Labels labels{
      {"link", name_.empty() ? std::string("unnamed") : name_}};
  auto& reg = telemetry::registry();
  ctr_pkts_ = &reg.counter("sim.link.packets_tx", labels);
  ctr_bytes_ = &reg.counter("sim.link.bytes_tx", labels);
  ctr_enqueued_ = &reg.counter("sim.link.packets_enqueued", labels);
  ctr_drops_ = &reg.counter("sim.link.packets_dropped", labels);
  ctr_outage_drops_ = &reg.counter("sim.link.outage_drops", labels);
  occupancy_gauge_ = &reg.gauge("sim.link.queue_occupancy", labels);
  qdelay_hist_ = &reg.histogram("sim.link.queueing_delay_s", labels);
}

void Link::send(Packet p) {
  if (!up_) {
    ++outage_drops_;
    ctr_outage_drops_->add();
    if (auto* t = telemetry::tracer();
        t && t->enabled(telemetry::Category::kLink)) {
      t->instant(telemetry::Category::kLink, "link.outage_drop",
                 sched_.now(), {telemetry::targ("link", name_)});
    }
    return;
  }
  if (busy_) {
    if (queue_->enqueue(p, sched_.now())) {
      ctr_enqueued_->add();
    } else {
      // The queue disc already accounted the drop in its own stats; the
      // registry counter and trace event make it visible fleet-wide.
      ctr_drops_->add();
      if (auto* t = telemetry::tracer();
          t && t->enabled(telemetry::Category::kLink)) {
        t->instant(
            telemetry::Category::kLink, "link.drop", sched_.now(),
            {telemetry::targ("link", name_),
             telemetry::targ("queue_bytes",
                             static_cast<double>(queue_->bytes()))});
      }
    }
    occupancy_gauge_->set(queue_->occupancy());
    return;
  }
  start_transmission(p);
}

void Link::start_transmission(Packet p) {
  busy_ = true;
  const util::Duration tx = util::transmission_time(p.size_bytes, rate_);
  busy_time_ += tx;
  bytes_tx_ += static_cast<std::uint64_t>(p.size_bytes);
  ++pkts_tx_;
  ctr_pkts_->add();
  ctr_bytes_->add(static_cast<std::uint64_t>(p.size_bytes));
  // The packet reaches the far end after serialization + propagation
  // (plus optional jitter, which can reorder); the transmitter frees up
  // after serialization alone.
  const util::Duration extra =
      jitter_ > 0 ? static_cast<util::Duration>(
                        jitter_rng_.uniform() * static_cast<double>(jitter_))
                  : 0;
  sched_.schedule_in(tx + prop_delay_ + extra,
                     [this, p] { dst_.deliver(p); });
  sched_.schedule_in(tx, [this] { on_transmit_complete(); });
}

void Link::on_transmit_complete() {
  busy_ = false;
  if (auto next = queue_->dequeue()) {
    const double waited = util::to_seconds(sched_.now() - next->enqueued_at);
    qdelay_.add(waited);
    qdelay_p99_.add(waited);
    qdelay_hist_->observe(waited);
    occupancy_gauge_->set(queue_->occupancy());
    start_transmission(*next);
  }
}

double Link::utilization(util::Time now) const noexcept {
  const util::Duration elapsed = now - stats_since_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

void Link::reset_stats() noexcept {
  bytes_tx_ = 0;
  pkts_tx_ = 0;
  busy_time_ = 0;
  stats_since_ = sched_.now();
  qdelay_ = {};
  qdelay_p99_ = util::P2Quantile(0.99);
  queue_->reset_stats();
}

}  // namespace phi::sim
