// link.hpp — unidirectional point-to-point link: fixed rate, fixed
// propagation delay, drop-tail FIFO buffer. A bidirectional "cable" is two
// Links. The transmit loop serializes one packet at a time, exactly like
// ns-2's DelayLink + DropTail pair.
//
// The per-packet datapath is allocation-free: send() copies the packet
// into the scheduler's PacketPool once, queues/serializes the handle, and
// the delivery/tx-complete events are scheduler fast-path kinds that store
// only {Link*, PacketHandle} (see docs/DATAPATH.md).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include <memory>

#include "sim/event.hpp"
#include "sim/packet.hpp"
#include "sim/queue_disc.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/p2_quantile.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace phi::sim {

class Node;
struct ShardBoundary;

class Link {
 public:
  /// Drop-tail convenience constructor: `buffer_bytes` bounds the queue;
  /// the packet being serialized does not count against it (it has left
  /// the queue).
  Link(Scheduler& sched, Node& dst, util::Rate rate,
       util::Duration prop_delay, std::int64_t buffer_bytes,
       std::string name = {});

  /// Full form: attach an arbitrary queueing discipline (e.g. RED+ECN).
  Link(Scheduler& sched, Node& dst, util::Rate rate,
       util::Duration prop_delay, std::unique_ptr<QueueDisc> queue,
       std::string name = {});

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Entry point from the upstream node: copy into the packet pool, then
  /// queue (or drop) and kick the transmitter.
  void send(const Packet& p);

  util::Rate rate() const noexcept { return rate_; }
  util::Duration propagation_delay() const noexcept { return prop_delay_; }
  const std::string& name() const noexcept { return name_; }
  const QueueDisc& queue() const noexcept { return *queue_; }
  QueueDisc& queue() noexcept { return *queue_; }
  Node& destination() noexcept { return dst_; }
  Scheduler& scheduler() noexcept { return *sched_; }

  /// Re-home the transmitter onto another scheduler (intra-run
  /// sharding): future events and pool handles come from `sched`, and
  /// the telemetry handles are re-resolved against the calling thread's
  /// current registry, so instrument ownership follows the shard.
  /// Precondition: no queued packets and no pending events for this
  /// link in the old scheduler that will still be dispatched.
  void rebind(Scheduler& sched);

  /// Route deliveries through a cross-shard boundary channel instead of
  /// the local scheduler (set by the sharding layer for cut links;
  /// nullptr restores direct delivery). See sim/sharding.hpp.
  void set_boundary(ShardBoundary* b) noexcept { boundary_ = b; }

  /// Release every queued packet back into the current pool (sharding
  /// teardown: queued handles must not outlive the shard's pool).
  void drop_queued() noexcept;

  /// Random per-packet extra propagation delay in [0, jitter]; non-zero
  /// jitter reorders packets (the §3.2 informed-adaptation scenario).
  void set_jitter(util::Duration jitter, std::uint64_t seed = 0x717) {
    jitter_ = jitter;
    jitter_rng_ = util::Rng(seed);
  }
  util::Duration jitter() const noexcept { return jitter_; }

  /// Failure injection: a downed link discards everything offered to it
  /// (packets already serialized/propagating still arrive). Used by the
  /// unreachability experiments and robustness tests.
  void set_up(bool up) noexcept { up_ = up; }
  bool is_up() const noexcept { return up_; }
  std::uint64_t outage_drops() const noexcept { return outage_drops_; }

  std::uint64_t bytes_transmitted() const noexcept { return bytes_tx_; }
  std::uint64_t packets_transmitted() const noexcept { return pkts_tx_; }

  /// Per-packet time spent in this link's queue (excludes serialization).
  /// Dequeue-side samples are batched; the accessor flushes them first.
  const util::RunningStats& queueing_delay() const {
    flush_stats();
    return qdelay_;
  }

  /// Streaming p99 of the per-packet queueing delay, seconds (P2
  /// estimator: O(1) space even on billion-packet runs). Estimated from a
  /// deterministic 1-in-8 subsample of dequeues — see flush_stats().
  double queueing_delay_p99_s() const {
    flush_stats();
    return qdelay_p99_.value();
  }

  /// Fraction of wall-clock the transmitter has been busy since the last
  /// reset_stats(). Serialization time is charged when transmission
  /// starts, so the not-yet-elapsed remainder of an in-flight packet is
  /// subtracted here.
  double utilization(util::Time now) const noexcept;

  void reset_stats() noexcept;

 private:
  friend void detail::link_deliver(Link& link, PacketPool& pool,
                                   PacketHandle h);
  friend void detail::link_deliver_burst(Link& link, PacketPool& pool,
                                         const PacketHandle* hs,
                                         std::size_t n);
  friend void detail::link_tx_complete(Link& link);

  void start_transmission(PacketHandle h);
  /// Scheduler fast-path targets: the delivery event hands the pooled
  /// packet to the destination then releases it; the tx-complete event
  /// frees the transmitter and pulls the next packet from the queue.
  /// Deliveries take the executing scheduler's pool: for a cut link the
  /// handle was re-homed into the destination shard's pool, which is not
  /// the pool this link transmits from.
  void complete_delivery(PacketPool& pool, PacketHandle h);
  /// Burst form: `n` same-deadline deliveries on this link, in schedule
  /// order, with the next packet's pool slot prefetched while the
  /// current one is being consumed.
  void complete_delivery_burst(PacketPool& pool, const PacketHandle* hs,
                               std::size_t n);
  void complete_transmission();

  /// Resolve the labeled registry handles in the calling thread's
  /// current registry (construction, and again on every rebind()).
  void resolve_telemetry();

  /// Replay batched queueing-delay samples, in arrival order, into the
  /// dequeue-side sinks, and push the occupancy gauge if dirty. The mean
  /// (RunningStats) sees every sample; the P2 quantile estimators see a
  /// deterministic 1-in-kQdelaySampleStride subsample.
  void flush_stats() const;

  Scheduler* sched_;
  PacketPool* pool_;
  Node& dst_;
  util::Rate rate_;
  util::Duration prop_delay_;
  std::unique_ptr<QueueDisc> queue_;
  std::string name_;
  ShardBoundary* boundary_ = nullptr;
  util::Duration jitter_ = 0;
  util::Rng jitter_rng_{0x717};

  bool busy_ = false;
  bool up_ = true;
  std::uint64_t outage_drops_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t pkts_tx_ = 0;
  util::Duration busy_time_ = 0;
  util::Time tx_end_ = 0;  ///< when the in-flight serialization finishes
  util::Time stats_since_ = 0;

  // Dequeue-side stat sinks are fed through a small batch so the hot path
  // does one array store per packet instead of three sink updates; the
  // flush replays samples in order, so the values are bit-identical to
  // unbatched feeding.
  static constexpr std::size_t kStatsBatch = 256;
  /// Quantile-estimator subsampling stride: each P2 add costs four marker
  /// updates, so feeding them every dequeue dominated the flush.
  static constexpr std::uint32_t kQdelaySampleStride = 8;
  mutable std::array<double, kStatsBatch> qdelay_batch_;
  mutable std::size_t qdelay_batch_n_ = 0;
  mutable std::uint32_t qdelay_sample_phase_ = 0;
  mutable bool occupancy_dirty_ = false;
  mutable util::RunningStats qdelay_;
  mutable util::P2Quantile qdelay_p99_{0.99};

  // Registry handles (labeled by link name), resolved at construction.
  telemetry::Counter* ctr_pkts_;
  telemetry::Counter* ctr_bytes_;
  telemetry::Counter* ctr_enqueued_;
  telemetry::Counter* ctr_drops_;
  telemetry::Counter* ctr_outage_drops_;
  telemetry::Gauge* occupancy_gauge_;
  telemetry::Histogram* qdelay_hist_;
};

}  // namespace phi::sim
