// link.hpp — unidirectional point-to-point link: fixed rate, fixed
// propagation delay, drop-tail FIFO buffer. A bidirectional "cable" is two
// Links. The transmit loop serializes one packet at a time, exactly like
// ns-2's DelayLink + DropTail pair.
#pragma once

#include <cstdint>
#include <string>

#include <memory>

#include "sim/event.hpp"
#include "sim/packet.hpp"
#include "sim/queue_disc.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/p2_quantile.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace phi::sim {

class Node;

class Link {
 public:
  /// Drop-tail convenience constructor: `buffer_bytes` bounds the queue;
  /// the packet being serialized does not count against it (it has left
  /// the queue).
  Link(Scheduler& sched, Node& dst, util::Rate rate,
       util::Duration prop_delay, std::int64_t buffer_bytes,
       std::string name = {});

  /// Full form: attach an arbitrary queueing discipline (e.g. RED+ECN).
  Link(Scheduler& sched, Node& dst, util::Rate rate,
       util::Duration prop_delay, std::unique_ptr<QueueDisc> queue,
       std::string name = {});

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Entry point from the upstream node: queue (or drop) and kick the
  /// transmitter.
  void send(Packet p);

  util::Rate rate() const noexcept { return rate_; }
  util::Duration propagation_delay() const noexcept { return prop_delay_; }
  const std::string& name() const noexcept { return name_; }
  const QueueDisc& queue() const noexcept { return *queue_; }
  QueueDisc& queue() noexcept { return *queue_; }
  Node& destination() noexcept { return dst_; }

  /// Random per-packet extra propagation delay in [0, jitter]; non-zero
  /// jitter reorders packets (the §3.2 informed-adaptation scenario).
  void set_jitter(util::Duration jitter, std::uint64_t seed = 0x717) {
    jitter_ = jitter;
    jitter_rng_ = util::Rng(seed);
  }
  util::Duration jitter() const noexcept { return jitter_; }

  /// Failure injection: a downed link discards everything offered to it
  /// (packets already serialized/propagating still arrive). Used by the
  /// unreachability experiments and robustness tests.
  void set_up(bool up) noexcept { up_ = up; }
  bool is_up() const noexcept { return up_; }
  std::uint64_t outage_drops() const noexcept { return outage_drops_; }

  std::uint64_t bytes_transmitted() const noexcept { return bytes_tx_; }
  std::uint64_t packets_transmitted() const noexcept { return pkts_tx_; }

  /// Per-packet time spent in this link's queue (excludes serialization).
  const util::RunningStats& queueing_delay() const noexcept {
    return qdelay_;
  }

  /// Streaming p99 of the per-packet queueing delay, seconds (P2
  /// estimator: O(1) space even on billion-packet runs).
  double queueing_delay_p99_s() const { return qdelay_p99_.value(); }

  /// Fraction of wall-clock the transmitter has been busy since t=0.
  double utilization(util::Time now) const noexcept;

  void reset_stats() noexcept;

 private:
  void start_transmission(Packet p);
  void on_transmit_complete();

  Scheduler& sched_;
  Node& dst_;
  util::Rate rate_;
  util::Duration prop_delay_;
  std::unique_ptr<QueueDisc> queue_;
  std::string name_;
  util::Duration jitter_ = 0;
  util::Rng jitter_rng_{0x717};

  bool busy_ = false;
  bool up_ = true;
  std::uint64_t outage_drops_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t pkts_tx_ = 0;
  util::Duration busy_time_ = 0;
  util::Time stats_since_ = 0;
  util::RunningStats qdelay_;
  util::P2Quantile qdelay_p99_{0.99};

  // Registry handles (labeled by link name), resolved at construction.
  telemetry::Counter* ctr_pkts_;
  telemetry::Counter* ctr_bytes_;
  telemetry::Counter* ctr_enqueued_;
  telemetry::Counter* ctr_drops_;
  telemetry::Counter* ctr_outage_drops_;
  telemetry::Gauge* occupancy_gauge_;
  telemetry::Histogram* qdelay_hist_;
};

}  // namespace phi::sim
