// tap.hpp — packet capture on a node: a LinkTap interposes on a flow's
// delivery path and records per-packet headers (a text-pcap for the
// simulator). Used for debugging transports and for building custom
// telemetry pipelines without touching the agents under test.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"

namespace phi::sim {

/// Interposes on one flow at one node: records every packet, then passes
/// it to the original agent. Detaches (restoring the original) on
/// destruction.
class FlowTap : public Agent {
 public:
  struct Record {
    util::Time at = 0;
    std::int64_t seq = 0;
    std::int64_t ack = -1;
    bool is_ack = false;
    bool ce = false;
    std::int32_t size_bytes = 0;
  };

  /// `inner` is the agent currently attached for `flow` on `node` (the
  /// tap replaces it and forwards).
  FlowTap(Scheduler& sched, Node& node, FlowId flow, Agent* inner);
  ~FlowTap() override;

  FlowTap(const FlowTap&) = delete;
  FlowTap& operator=(const FlowTap&) = delete;

  void on_packet(const Packet& p) override;

  /// Optional predicate: record only packets it accepts (default: all).
  void set_filter(std::function<bool(const Packet&)> f) {
    filter_ = std::move(f);
  }

  const std::vector<Record>& records() const noexcept { return records_; }
  std::uint64_t packets_seen() const noexcept { return seen_; }

  /// Write "t_s,seq,ack,is_ack,ce,bytes" rows.
  bool write_csv(const std::string& path) const;

 private:
  Scheduler& sched_;
  Node& node_;
  FlowId flow_;
  Agent* inner_;
  std::function<bool(const Packet&)> filter_;
  std::vector<Record> records_;
  std::uint64_t seen_ = 0;
};

}  // namespace phi::sim
