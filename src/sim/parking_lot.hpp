// parking_lot.hpp — the classic multi-bottleneck chain: routers R0..RH
// connected by per-hop bottleneck links, "long" flows traversing every
// hop and per-hop "cross" flows loading individual hops. The paper's
// context is per *path* (§2.2.2: a /24 behind a particular egress); this
// topology is what makes per-path congestion contexts observable — two
// hops can carry very different weather.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/monitor.hpp"
#include "sim/network.hpp"
#include "sim/topology_iface.hpp"

namespace phi::sim {

struct ParkingLotConfig {
  std::size_t hops = 2;            ///< bottleneck links (routers = hops+1)
  std::size_t cross_per_hop = 4;   ///< cross-traffic pairs loading each hop
  std::size_t long_flows = 2;      ///< end-to-end pairs across all hops
  util::Rate hop_rate = 15.0 * util::kMbps;
  util::Duration hop_delay = util::milliseconds(20);  ///< one way per hop
  util::Rate edge_rate = 1000.0 * util::kMbps;
  util::Duration edge_delay = util::milliseconds(1);
  double buffer_bdp_multiple = 5.0;
  util::Duration monitor_interval = util::milliseconds(100);
};

class ParkingLot : public Topology {
 public:
  explicit ParkingLot(const ParkingLotConfig& cfg);

  Network& net() noexcept override { return net_; }
  Scheduler& scheduler() noexcept { return net_.scheduler(); }
  const ParkingLotConfig& config() const noexcept { return cfg_; }

  std::size_t hops() const noexcept { return cfg_.hops; }

  // Topology interface. Endpoints are numbered hop-major: cross pair
  // (h, i) is endpoint h * cross_per_hop + i, and the long flows follow
  // at hops * cross_per_hop + j. Paths are the hops.
  std::size_t endpoint_count() const noexcept override {
    return cfg_.hops * cfg_.cross_per_hop + cfg_.long_flows;
  }
  Endpoint endpoint(std::size_t i) override {
    const std::size_t crosses = cfg_.hops * cfg_.cross_per_hop;
    if (i < crosses) {
      const std::size_t h = i / cfg_.cross_per_hop;
      const std::size_t k = i % cfg_.cross_per_hop;
      return Endpoint{cross_senders_.at(h).at(k),
                      cross_receivers_.at(h).at(k)};
    }
    const std::size_t j = i - crosses;
    return Endpoint{long_senders_.at(j), long_receivers_.at(j)};
  }
  std::size_t path_count() const noexcept override { return cfg_.hops; }
  Link& path_link(std::size_t p) override { return *hop_links_.at(p); }
  LinkMonitor& path_monitor(std::size_t p) override {
    return *monitors_.at(p);
  }
  std::size_t endpoint_path(std::size_t i) const override {
    const std::size_t crosses = cfg_.hops * cfg_.cross_per_hop;
    if (i >= endpoint_count()) throw std::out_of_range("endpoint index");
    return i < crosses ? i / cfg_.cross_per_hop : kAllPaths;
  }

  Node& long_sender(std::size_t i) { return *long_senders_.at(i); }
  Node& long_receiver(std::size_t i) { return *long_receivers_.at(i); }
  Node& cross_sender(std::size_t hop, std::size_t i) {
    return *cross_senders_.at(hop).at(i);
  }
  Node& cross_receiver(std::size_t hop, std::size_t i) {
    return *cross_receivers_.at(hop).at(i);
  }

  /// Forward bottleneck link of hop h (router h -> router h+1).
  Link& hop_link(std::size_t h) { return *hop_links_.at(h); }
  LinkMonitor& hop_monitor(std::size_t h) { return *monitors_.at(h); }

 private:
  /// Create a host, cable it to `router`, and install routes everywhere.
  Node& attach_host(std::size_t router_idx, const std::string& name);

  ParkingLotConfig cfg_;
  Network net_;
  std::vector<Node*> routers_;
  std::vector<Link*> hop_links_;      ///< forward, one per hop
  std::vector<Link*> hop_links_rev_;  ///< reverse, one per hop
  std::vector<Node*> long_senders_;
  std::vector<Node*> long_receivers_;
  std::vector<std::vector<Node*>> cross_senders_;
  std::vector<std::vector<Node*>> cross_receivers_;
  std::vector<std::unique_ptr<LinkMonitor>> monitors_;
};

}  // namespace phi::sim
