// fq.hpp — per-flow fair queueing (Deficit Round Robin, Shreedhar &
// Varghese). §3.1 roots Phi's need for coordination in the prevalence of
// FIFO queues, which are not incentive-compatible [Godfrey et al.]: an
// aggressive flow hurts everyone. Under fair queueing each flow gets an
// isolated share, so coordination buys much less — DRR is the
// counterfactual the ablation runs against.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/queue_disc.hpp"
#include "util/ring.hpp"

namespace phi::sim {

class DrrQueue final : public QueueDisc {
 public:
  struct Config {
    std::int64_t capacity_bytes = 0;  ///< shared across all flows
    std::int64_t quantum_bytes = kSegmentBytes;  ///< per-round credit
  };

  explicit DrrQueue(Config cfg);

  bool enqueue(PacketPool& pool, PacketHandle h, util::Time now) override;
  Queued dequeue() override;

  bool empty() const noexcept override { return bytes_ == 0; }
  std::size_t packets() const noexcept override { return packets_; }
  std::int64_t bytes() const noexcept override { return bytes_; }
  std::int64_t capacity_bytes() const noexcept override {
    return cfg_.capacity_bytes;
  }
  const QueueStats& stats() const noexcept override { return stats_; }
  void reset_stats() noexcept override { stats_ = {}; }

  std::size_t active_flows() const noexcept { return flows_.size(); }

 private:
  struct FlowQueue {
    util::RingDeque<Queued> packets;
    std::int64_t deficit = 0;
    std::int64_t bytes = 0;  ///< sum of queued sizes, kept incrementally
  };

  /// Longest per-flow queue (drop-from-longest on overflow keeps heavy
  /// flows from starving light ones even at the buffer limit).
  FlowId longest_flow() const;

  Config cfg_;
  std::unordered_map<FlowId, FlowQueue> flows_;
  std::list<FlowId> round_robin_;  ///< active flows in service order
  std::int64_t bytes_ = 0;
  std::size_t packets_ = 0;
  QueueStats stats_;
};

}  // namespace phi::sim
