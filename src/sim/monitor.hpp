// monitor.hpp — periodic sampling of a link's utilization and queue
// occupancy. This is the measurement substrate behind Phi's congestion
// context: the "up-to-the-minute bottleneck utilization" signal u that
// Remy-Phi-ideal consumes, and the windowed averages the context server
// aggregates.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/event.hpp"
#include "sim/link.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace phi::sim {

class LinkMonitor {
 public:
  /// Samples `link` every `interval` starting one interval from now.
  /// `window` controls how many recent samples `recent_utilization()`
  /// averages over (the "current network weather").
  LinkMonitor(Scheduler& sched, const Link& link,
              util::Duration interval = util::milliseconds(100),
              std::size_t window = 10);

  LinkMonitor(const LinkMonitor&) = delete;
  LinkMonitor& operator=(const LinkMonitor&) = delete;
  ~LinkMonitor();

  /// Utilization over the last completed sampling interval, in [0, 1].
  double instant_utilization() const noexcept { return last_util_; }

  /// Mean utilization over the trailing window (the u signal).
  double recent_utilization() const noexcept;

  /// Mean queue occupancy (fraction of buffer) over the trailing window.
  double recent_occupancy() const noexcept;

  /// Whole-run statistics.
  const util::RunningStats& utilization_series() const noexcept {
    return util_all_;
  }
  const util::RunningStats& occupancy_series() const noexcept {
    return occ_all_;
  }

  /// Whole-run bottleneck loss rate (drops / arrivals at the queue).
  double loss_rate() const noexcept { return link_.queue().stats().drop_rate(); }

  /// Mean per-packet queueing delay at the link, in seconds.
  double mean_queueing_delay_s() const noexcept {
    return link_.queueing_delay().mean();
  }

  util::Duration interval() const noexcept { return interval_; }
  std::uint64_t samples() const noexcept { return sample_count_; }

  /// Direct views of the monitored link (for oracle context sources).
  const QueueDisc& link_queue() const noexcept { return link_.queue(); }
  double link_rate() const noexcept { return link_.rate(); }

  /// Discard accumulated series (post-warmup reset). The sampling cadence
  /// continues; recent-window state is kept.
  void reset_series() noexcept {
    util_all_ = {};
    occ_all_ = {};
  }

  /// Move the sampling cadence onto another scheduler (intra-run
  /// sharding): the pending tick is cancelled in the old scheduler and
  /// re-armed one interval from the new scheduler's now(), and the
  /// telemetry handles are re-resolved in the calling thread's current
  /// registry. Series/window state carries over untouched.
  void rebind(Scheduler& sched);

 private:
  void sample();
  void arm();
  void resolve_telemetry();

  Scheduler* sched_;
  const Link& link_;
  util::Duration interval_;
  std::size_t window_;

  std::uint64_t last_bytes_ = 0;
  double last_util_ = 0.0;
  std::deque<double> util_window_;
  std::deque<double> occ_window_;
  util::RunningStats util_all_;
  util::RunningStats occ_all_;
  std::uint64_t sample_count_ = 0;
  EventId pending_ = 0;
  bool stopped_ = false;

  // Registry handles (labeled by link name), resolved at construction.
  telemetry::Gauge* util_gauge_;
  telemetry::Gauge* occ_gauge_;
  telemetry::Histogram* util_hist_;
};

}  // namespace phi::sim
