// queue_disc.hpp — queueing-discipline interface. The paper's experiments
// run drop-tail FIFO (whose incentive-incompatibility motivates Phi's
// coordination, §3.1); RED+ECN is provided as the ablation counterpoint:
// how much of Phi's benefit survives once the network manages its queues?
#pragma once

#include <cstdint>

#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "sim/queue.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace phi::sim {

/// Abstract bounded packet queue attached to a link's transmitter.
/// Operates on PacketPool handles: an accepted handle is owned by the
/// queue until dequeue() hands it back; a rejected one (enqueue returns
/// false) stays with the caller, who releases it. Discs that drop already
/// -buffered packets (e.g. DRR push-out) release those handles themselves.
class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  /// Accept or drop (possibly ECN-mark, via pool.get(h)) an arriving
  /// pooled packet.
  virtual bool enqueue(PacketPool& pool, PacketHandle h,
                       util::Time now) = 0;
  /// Head-of-line entry, or `handle == kNullPacket` when empty.
  virtual Queued dequeue() = 0;

  virtual bool empty() const noexcept = 0;
  virtual std::size_t packets() const noexcept = 0;
  virtual std::int64_t bytes() const noexcept = 0;
  virtual std::int64_t capacity_bytes() const noexcept = 0;
  virtual const QueueStats& stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;

  /// Instantaneous occupancy in [0, 1].
  double occupancy() const noexcept {
    const auto cap = capacity_bytes();
    return cap > 0 ? static_cast<double>(bytes()) /
                         static_cast<double>(cap)
                   : 0.0;
  }
};

/// Drop-tail adapter over the concrete DropTailQueue.
class DropTailDisc final : public QueueDisc {
 public:
  explicit DropTailDisc(std::int64_t capacity_bytes) : q_(capacity_bytes) {}

  bool enqueue(PacketPool& pool, PacketHandle h, util::Time now) override {
    return q_.enqueue(pool, h, now);
  }
  Queued dequeue() override { return q_.dequeue(); }
  bool empty() const noexcept override { return q_.empty(); }
  std::size_t packets() const noexcept override { return q_.packets(); }
  std::int64_t bytes() const noexcept override { return q_.bytes(); }
  std::int64_t capacity_bytes() const noexcept override {
    return q_.capacity_bytes();
  }
  const QueueStats& stats() const noexcept override { return q_.stats(); }
  void reset_stats() noexcept override { q_.reset_stats(); }

 private:
  DropTailQueue q_;
};

/// Random Early Detection (Floyd & Jacobson) with ECN marking ("gentle"
/// variant). Average queue length is an EWMA sampled at enqueue; between
/// min_th and max_th arriving packets are marked (ECT traffic) or dropped
/// with probability ramping to max_p, and between max_th and 2*max_th the
/// probability ramps to 1.
class RedQueue final : public QueueDisc {
 public:
  struct Config {
    std::int64_t capacity_bytes = 0;   ///< hard limit (tail drop beyond)
    double min_th_fraction = 0.15;     ///< of capacity
    double max_th_fraction = 0.5;
    double max_p = 0.1;
    double weight = 0.002;             ///< EWMA weight of instantaneous queue
    bool ecn = true;                   ///< mark ECT packets instead of drop
    std::uint64_t seed = 0x12ED;       ///< RNG stream for mark decisions
  };

  explicit RedQueue(Config cfg);

  bool enqueue(PacketPool& pool, PacketHandle h, util::Time now) override;
  Queued dequeue() override;

  bool empty() const noexcept override { return q_.empty(); }
  std::size_t packets() const noexcept override { return q_.packets(); }
  std::int64_t bytes() const noexcept override { return q_.bytes(); }
  std::int64_t capacity_bytes() const noexcept override {
    return q_.capacity_bytes();
  }
  const QueueStats& stats() const noexcept override { return q_.stats(); }
  void reset_stats() noexcept override {
    q_.reset_stats();
    marks_ = 0;
  }

  std::uint64_t ecn_marks() const noexcept { return marks_; }
  double average_queue_bytes() const noexcept { return avg_; }

 private:
  /// Probability of marking/dropping at the current average occupancy.
  double mark_probability() const noexcept;

  Config cfg_;
  DropTailQueue q_;
  double avg_ = 0.0;
  std::uint64_t marks_ = 0;
  std::uint64_t since_last_mark_ = 0;
  util::Rng rng_;
  telemetry::Counter* ctr_marks_ = nullptr;
  telemetry::Counter* ctr_early_drops_ = nullptr;
};

}  // namespace phi::sim
