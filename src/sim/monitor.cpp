#include "sim/monitor.hpp"

namespace phi::sim {

LinkMonitor::LinkMonitor(Scheduler& sched, const Link& link,
                         util::Duration interval, std::size_t window)
    : sched_(&sched), link_(link), interval_(interval), window_(window) {
  resolve_telemetry();
  last_bytes_ = link_.bytes_transmitted();
  arm();
}

void LinkMonitor::resolve_telemetry() {
  const telemetry::Labels labels{
      {"link", link_.name().empty() ? std::string("unnamed")
                                    : link_.name()}};
  auto& reg = telemetry::registry();
  util_gauge_ = &reg.gauge("sim.monitor.utilization", labels);
  occ_gauge_ = &reg.gauge("sim.monitor.occupancy", labels);
  // Utilization samples live in [0, 1]; linear-ish buckets from 1/64 up
  // resolve the whole range.
  util_hist_ = &reg.histogram("sim.monitor.utilization_sample", labels,
                              {1.0 / 64.0, 1.5, 12});
}

void LinkMonitor::rebind(Scheduler& sched) {
  if (pending_ != 0) sched_->cancel(pending_);
  pending_ = 0;
  sched_ = &sched;
  resolve_telemetry();
  arm();
}

LinkMonitor::~LinkMonitor() {
  stopped_ = true;
  if (pending_ != 0) sched_->cancel(pending_);
}

void LinkMonitor::arm() {
  pending_ = sched_->schedule_in(interval_, [this] {
    if (stopped_) return;
    sample();
    arm();
  });
}

void LinkMonitor::sample() {
  const std::uint64_t bytes = link_.bytes_transmitted();
  const double sent_bits = static_cast<double>(bytes - last_bytes_) * 8.0;
  last_bytes_ = bytes;
  const double capacity_bits = link_.rate() * util::to_seconds(interval_);
  last_util_ = capacity_bits > 0.0 ? sent_bits / capacity_bits : 0.0;
  if (last_util_ > 1.0) last_util_ = 1.0;

  const double occ = link_.queue().occupancy();

  util_window_.push_back(last_util_);
  occ_window_.push_back(occ);
  if (util_window_.size() > window_) util_window_.pop_front();
  if (occ_window_.size() > window_) occ_window_.pop_front();

  util_all_.add(last_util_);
  occ_all_.add(occ);
  ++sample_count_;

  util_gauge_->set(last_util_);
  occ_gauge_->set(occ);
  util_hist_->observe(last_util_);
  if (auto* t = telemetry::tracer();
      t && t->enabled(telemetry::Category::kLink)) {
    // Chrome "C" counter events render as stacked per-link tracks.
    const util::Time now = sched_->now();
    t->counter(telemetry::Category::kLink, "monitor.utilization", now,
               last_util_);
    t->counter(telemetry::Category::kLink, "monitor.occupancy", now, occ);
  }
}

double LinkMonitor::recent_utilization() const noexcept {
  if (util_window_.empty()) return 0.0;
  double s = 0.0;
  for (double v : util_window_) s += v;
  return s / static_cast<double>(util_window_.size());
}

double LinkMonitor::recent_occupancy() const noexcept {
  if (occ_window_.empty()) return 0.0;
  double s = 0.0;
  for (double v : occ_window_) s += v;
  return s / static_cast<double>(occ_window_.size());
}

}  // namespace phi::sim
