// graph_topology.hpp — generated topologies. A GraphSpec is a plain
// adjacency description (nodes, duplex edges, sender/receiver endpoint
// pairs); GraphTopology builds the Network from it, installs
// deterministic shortest-path routes with destination-spread ECMP, and
// exposes every direction of every monitored edge as a sim::Topology
// path with its own LinkMonitor. Two generators produce GraphSpecs:
//
//   * fat_tree_graph — the k-ary datacenter fat tree (k pods of k/2 edge
//     and k/2 agg switches, (k/2)^2 cores, k^3/4 hosts). Core links get
//     the largest propagation delay, so the shard partitioner's
//     delay-tier cut maps pods onto shards (docs/PARALLELISM.md).
//   * wan_graph — a heterogeneous WAN: site routers on a ring plus
//     seeded random chords, per-edge rates and delays drawn from
//     configured ranges, a few hosts per site.
//
// Everything is a pure function of the config (and an explicit topology
// seed for the WAN), so equal specs reproduce identical networks, paths
// and routes — the same determinism contract the canned topologies obey.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/monitor.hpp"
#include "sim/network.hpp"
#include "sim/topology_iface.hpp"

namespace phi::sim {

/// Adjacency description a GraphTopology is built from.
struct GraphSpec {
  struct Edge {
    std::size_t a = 0;  ///< node index
    std::size_t b = 0;  ///< node index
    util::Rate rate = 100.0 * util::kMbps;
    util::Duration delay = util::milliseconds(1);  ///< one way, each direction
    std::int64_t buffer_bytes = 256 * 1024;
    /// Both directions of a monitored edge become Topology paths.
    bool monitored = false;
  };
  struct EndpointSpec {
    std::size_t tx = 0;  ///< node index (host)
    std::size_t rx = 0;  ///< node index (host)
    int region = 0;      ///< aggregation-tree region (pod / site)
  };

  std::vector<std::string> nodes;
  std::vector<Edge> edges;
  std::vector<EndpointSpec> endpoints;
  util::Duration monitor_interval = util::milliseconds(100);
  const char* klass = "graph";  ///< generator kind ("fat-tree", "wan", ...)
  int regions = 1;

  std::size_t monitored_edges() const noexcept {
    std::size_t n = 0;
    for (const Edge& e : edges) n += e.monitored ? 1 : 0;
    return n;
  }
};

/// Node/link/endpoint/path counts implied by a GraphSpec without
/// building it (the self-describing-artifact satellite): links counts
/// both directions of every duplex edge; paths counts both directions
/// of every monitored edge, exactly GraphTopology::path_count().
struct TopologyShape {
  const char* klass = "graph";
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t endpoints = 0;
  std::size_t paths = 0;
};

TopologyShape graph_shape(const GraphSpec& spec) noexcept;

/// A fully-routed network built from a GraphSpec. Routing is hop-count
/// shortest path weighted by propagation delay; among equal-cost next
/// hops the choice is spread by destination node id (classic
/// destination-based ECMP — in the fat tree this reproduces the
/// Al-Fares suffix routing), so it is a pure function of the graph.
class GraphTopology : public Topology {
 public:
  explicit GraphTopology(GraphSpec spec);

  Network& net() noexcept override { return net_; }

  std::size_t endpoint_count() const noexcept override {
    return spec_.endpoints.size();
  }
  Endpoint endpoint(std::size_t i) override;

  // Paths: directional monitored links in edge order — path 2m is edge
  // m's a->b direction, path 2m+1 its b->a direction.
  std::size_t path_count() const noexcept override { return paths_.size(); }
  Link& path_link(std::size_t p) override { return *paths_.at(p); }
  LinkMonitor& path_monitor(std::size_t p) override {
    return *monitors_.at(p);
  }
  /// The *bottleneck* monitored link endpoint `i`'s route crosses (the
  /// smallest-rate one; first traversed on ties), or kAllPaths when the
  /// route crosses no monitored link (an intra-rack pair).
  std::size_t endpoint_path(std::size_t i) const override {
    if (i >= endpoint_paths_.size())
      throw std::out_of_range("endpoint index");
    return endpoint_paths_[i];
  }

  const GraphSpec& spec() const noexcept { return spec_; }
  /// Aggregation-tree region of endpoint `i` (fat-tree pod, WAN site).
  int endpoint_region(std::size_t i) const {
    return spec_.endpoints.at(i).region;
  }
  int regions() const noexcept { return spec_.regions; }
  /// Number of links endpoint `i`'s forward route traverses.
  std::size_t endpoint_hops(std::size_t i) const {
    return hop_counts_.at(i);
  }

 private:
  void install_routes();
  void enumerate_paths();

  GraphSpec spec_;
  Network net_;
  std::vector<Node*> nodes_;
  std::vector<Link*> fwd_;  ///< edge i, a->b
  std::vector<Link*> rev_;  ///< edge i, b->a
  std::vector<Link*> paths_;
  std::vector<std::unique_ptr<LinkMonitor>> monitors_;
  std::vector<std::size_t> endpoint_paths_;
  std::vector<std::size_t> hop_counts_;
};

/// k-ary fat tree (k even, >= 2): k pods x (k/2 edge + k/2 agg)
/// switches, (k/2)^2 cores, k/2 hosts per edge switch. Endpoint i sends
/// from host i to host (i + H/2) mod H — always a different pod for
/// k >= 4 — and its region is the sending pod. The agg<->core tier is
/// monitored (it is the congested tier with the default rates) and
/// carries the largest delay so pods map onto shards.
struct FatTreeConfig {
  std::size_t k = 4;
  util::Rate host_rate = 400.0 * util::kMbps;    ///< host <-> edge switch
  util::Rate fabric_rate = 200.0 * util::kMbps;  ///< edge <-> agg
  util::Rate core_rate = 100.0 * util::kMbps;    ///< agg <-> core
  util::Duration host_delay = util::microseconds(20);
  util::Duration fabric_delay = util::microseconds(50);
  /// Core-link propagation delay; also the sharded lookahead window.
  util::Duration core_delay = util::milliseconds(1);
  double buffer_bdp_multiple = 2.0;
  util::Duration monitor_interval = util::milliseconds(100);
};

GraphSpec fat_tree_graph(const FatTreeConfig& cfg);

/// Heterogeneous WAN: `sites` routers on a ring plus `extra_chords`
/// seeded random chords; every inter-site edge draws its rate and delay
/// uniformly from the configured ranges (all monitored). Each site hosts
/// `hosts_per_site` endpoints on fast access links; endpoint i sends
/// host i -> host (i + H/2) mod H and its region is the sending site.
struct WanGraphConfig {
  std::size_t sites = 6;
  std::size_t hosts_per_site = 3;
  std::size_t extra_chords = 2;
  util::Rate min_rate = 40.0 * util::kMbps;
  util::Rate max_rate = 160.0 * util::kMbps;
  util::Duration min_delay = util::milliseconds(4);
  util::Duration max_delay = util::milliseconds(30);
  util::Rate access_rate = 1000.0 * util::kMbps;
  util::Duration access_delay = util::milliseconds(1);
  double buffer_bdp_multiple = 2.0;
  /// Topology-shape seed (chords + per-edge draws); independent of the
  /// scenario run seed, so overriding `seed` re-runs the same graph.
  std::uint64_t seed = 1;
  util::Duration monitor_interval = util::milliseconds(100);
};

GraphSpec wan_graph(const WanGraphConfig& cfg);

}  // namespace phi::sim
