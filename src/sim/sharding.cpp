#include "sim/sharding.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "sim/node.hpp"

namespace phi::sim {

BoundaryRing::BoundaryRing(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  buf_.resize(cap);
  mask_ = cap - 1;
}

bool BoundaryRing::try_push(const BoundaryMessage& m) noexcept {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (t - h == buf_.size()) return false;
  buf_[static_cast<std::size_t>(t) & mask_] = m;
  tail_.store(t + 1, std::memory_order_release);
  return true;
}

bool BoundaryRing::try_pop(BoundaryMessage& out) noexcept {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t t = tail_.load(std::memory_order_acquire);
  if (h == t) return false;
  out = buf_[static_cast<std::size_t>(h) & mask_];
  head_.store(h + 1, std::memory_order_release);
  return true;
}

std::size_t BoundaryRing::visible() const noexcept {
  return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                  head_.load(std::memory_order_relaxed));
}

void BoundaryChannel::push(const BoundaryMessage& m) {
  ++pushed_;
  if (ring_.try_push(m)) return;
  // Overflow safety valve: the producer cannot wait for the consumer
  // (drains only happen at window barriers, which this producer also
  // has to reach), so a full ring falls back to a locked vector. Cold
  // by construction — capacity is sized for a whole window's traffic —
  // but correctness must not depend on that tuning.
  std::lock_guard<std::mutex> lk(spill_mu_);
  spill_.push_back(m);
  ++spill_count_;
}

void BoundaryChannel::drain(std::vector<BoundaryMessage>& out) {
  BoundaryMessage m;
  while (ring_.try_pop(m)) out.push_back(m);
  std::lock_guard<std::mutex> lk(spill_mu_);
  out.insert(out.end(), spill_.begin(), spill_.end());
  spill_.clear();
}

namespace detail {
void boundary_push(ShardBoundary& b, util::Time pushed_at,
                   util::Time arrival, Link* link, const Packet& p) {
  BoundaryMessage m;
  m.arrival = arrival;
  m.pushed_at = pushed_at;
  m.seq = (*b.seq)++;
  m.src_shard = b.src_shard;
  m.link = link;
  m.pkt = p;
  b.channel->push(m);
}
}  // namespace detail

namespace {

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    // Deterministic representative: the smaller id wins, so the
    // component ordering below never depends on merge order.
    if (a > b) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

}  // namespace

ShardPlan plan_shards(Network& net, int shards) {
  ShardPlan plan;
  const std::size_t n = net.node_count();
  const auto& links = net.links();
  plan.node_shard.assign(n, 0);
  plan.link_cut.assign(links.size(), 0);
  if (shards <= 1 || n < 2) return plan;

  // Per-link endpoints and delay, and the distinct delay tiers ascending.
  std::vector<int> src(links.size()), dst(links.size());
  std::vector<util::Duration> delay(links.size());
  std::vector<util::Duration> tiers;
  for (std::size_t i = 0; i < links.size(); ++i) {
    src[i] = static_cast<int>(net.link_src(i));
    dst[i] = static_cast<int>(links[i]->destination().id());
    delay[i] = links[i]->propagation_delay();
    tiers.push_back(delay[i]);
  }
  std::sort(tiers.begin(), tiers.end());
  tiers.erase(std::unique(tiers.begin(), tiers.end()), tiers.end());

  // Merge whole tiers, cheapest links first, while the component count
  // stays >= shards. All-or-nothing per tier: merging only part of a
  // tier would make the cut depend on link construction order instead
  // of latency, and would pull the window down to that tier's delay
  // anyway. The first tier that cannot be merged marks the cut
  // frontier; links below it are guaranteed intra-shard.
  Dsu dsu(n);
  std::size_t components = n;
  for (const util::Duration d : tiers) {
    Dsu trial = dsu;
    std::size_t c = components;
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (delay[i] == d && trial.unite(src[i], dst[i])) --c;
    }
    if (c < static_cast<std::size_t>(shards)) break;
    dsu = std::move(trial);
    components = c;
  }

  // Components in min-NodeId order, linear-packed into contiguous
  // shards balanced by node count.
  std::vector<int> comp_of(n, -1);
  std::vector<std::size_t> comp_size;
  for (std::size_t v = 0; v < n; ++v) {
    const int root = dsu.find(static_cast<int>(v));
    if (comp_of[static_cast<std::size_t>(root)] < 0) {
      comp_of[static_cast<std::size_t>(root)] =
          static_cast<int>(comp_size.size());
      comp_size.push_back(0);
    }
    comp_of[v] = comp_of[static_cast<std::size_t>(root)];
    ++comp_size[static_cast<std::size_t>(comp_of[v])];
  }
  const std::size_t c_total = comp_size.size();
  plan.shards = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(shards), c_total));
  if (plan.shards <= 1) {
    plan.shards = 1;
    return plan;
  }

  std::vector<int> comp_shard(c_total, 0);
  std::size_t ci = 0;
  std::size_t nodes_left = n;
  for (int s = 0; s < plan.shards; ++s) {
    const int shards_left = plan.shards - s;
    const std::size_t target =
        (nodes_left + static_cast<std::size_t>(shards_left) - 1) /
        static_cast<std::size_t>(shards_left);
    std::size_t got = 0;
    while (ci < c_total) {
      if (got > 0) {
        // Stop early to leave one component for each remaining shard,
        // and close the shard once it has met its fair share.
        if (c_total - ci <= static_cast<std::size_t>(shards_left - 1)) break;
        if (shards_left > 1 && got + comp_size[ci] > target) break;
      }
      comp_shard[ci] = s;
      got += comp_size[ci];
      nodes_left -= comp_size[ci];
      ++ci;
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    plan.node_shard[v] = comp_shard[static_cast<std::size_t>(comp_of[v])];

  // The cut set and the lookahead window it implies. A cut with zero
  // lookahead admits no parallelism — fall back to serial rather than
  // degenerate to lockstep single-event windows.
  bool any_cut = false;
  util::Duration window = 0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (plan.node_shard[static_cast<std::size_t>(src[i])] ==
        plan.node_shard[static_cast<std::size_t>(dst[i])])
      continue;
    plan.link_cut[i] = 1;
    ++plan.cut_links;
    if (delay[i] <= 0) {
      return ShardPlan{1, 0, std::vector<int>(n, 0),
                       std::vector<std::uint8_t>(links.size(), 0), 0};
    }
    if (!any_cut || delay[i] < window) window = delay[i];
    any_cut = true;
  }
  plan.window = any_cut ? window : 0;
  return plan;
}

ShardedRun::ShardedRun(Network& net, const ShardPlan& plan,
                       std::size_t ring_capacity)
    : net_(net),
      plan_(plan),
      gang_(static_cast<std::size_t>(plan.shards)),
      barrier_(static_cast<std::size_t>(plan.shards)) {
  if (plan_.shards < 1) throw std::invalid_argument("bad shard plan");
  if (plan_.node_shard.size() != net_.node_count() ||
      plan_.link_cut.size() != net_.links().size())
    throw std::invalid_argument("shard plan does not match this network");
  const auto s_count = static_cast<std::size_t>(plan_.shards);
  regs_.reserve(s_count);
  scheds_.reserve(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    regs_.push_back(std::make_unique<telemetry::MetricRegistry>());
    // Each shard scheduler's instruments live in that shard's registry;
    // merge_telemetry folds them back in shard order.
    telemetry::ScopedRegistry scope(*regs_[s]);
    scheds_.push_back(std::make_unique<Scheduler>());
  }
  seqs_.assign(s_count, 0);
  inbound_.resize(s_count);
  scratch_.resize(s_count);
  inj_tick_.assign(s_count, 0);
  inj_intra_.assign(s_count, 0);

  const auto& links = net_.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    Link& l = *links[i];
    const auto src_shard = static_cast<std::size_t>(
        plan_.node_shard[static_cast<std::size_t>(net_.link_src(i))]);
    {
      // A link is homed on its *source* shard: transmission state
      // (queue, busy flag, stats) is only ever touched by the shard
      // that owns the upstream node.
      telemetry::ScopedRegistry scope(*regs_[src_shard]);
      l.rebind(*scheds_[src_shard]);
    }
    if (plan_.link_cut[i] == 0) continue;
    const auto dst_shard = static_cast<std::size_t>(
        plan_.node_shard[static_cast<std::size_t>(l.destination().id())]);
    channels_.push_back(std::make_unique<BoundaryChannel>(
        static_cast<int>(src_shard), static_cast<int>(dst_shard),
        ring_capacity));
    auto b = std::make_unique<ShardBoundary>();
    b->channel = channels_.back().get();
    b->seq = &seqs_[src_shard];
    b->src_shard = static_cast<std::uint32_t>(src_shard);
    boundaries_.push_back(std::move(b));
    l.set_boundary(boundaries_.back().get());
    inbound_[dst_shard].push_back(channels_.size() - 1);
    stash_.emplace_back();
  }
}

ShardedRun::~ShardedRun() {
  // Restore the serial world in an order that never dangles: monitors
  // first (their pending tick lives in a shard scheduler), then links —
  // queued handles released while the owning shard pool is still alive,
  // boundary detached, transmitter re-homed onto the network scheduler.
  // The topology (which owns links and monitors) outlives this object;
  // the shard schedulers die with it, taking their un-run events along.
  for (LinkMonitor* m : monitors_) m->rebind(net_.scheduler());
  for (const auto& l : net_.links()) {
    l->set_boundary(nullptr);
    l->drop_queued();
    l->rebind(net_.scheduler());
  }
}

void ShardedRun::adopt_monitor(LinkMonitor& m, const Link& link) {
  const auto& links = net_.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].get() != &link) continue;
    const auto s = static_cast<std::size_t>(
        plan_.node_shard[static_cast<std::size_t>(net_.link_src(i))]);
    telemetry::ScopedRegistry scope(*regs_[s]);
    m.rebind(*scheds_[s]);
    monitors_.push_back(&m);
    return;
  }
  throw std::invalid_argument("monitor's link is not in this network");
}

void ShardedRun::drain_inbound(std::size_t shard, util::Time bound) {
  auto& scratch = scratch_[shard];
  scratch.clear();
  for (const std::size_t ci : inbound_[shard]) {
    auto& stash = stash_[ci];
    channels_[ci]->drain(stash);
    // Inject what is due by `bound`; keep the rest (compacted in place)
    // for a later window. The visible set at drain time can race with
    // the producer's tail, but every message due by `bound` was pushed
    // before the producer's last barrier (the window protocol's
    // invariant), so the *injected* set is deterministic.
    std::size_t keep = 0;
    for (const BoundaryMessage& m : stash) {
      if (m.arrival <= bound) {
        scratch.push_back(m);
      } else {
        stash[keep++] = m;
      }
    }
    stash.resize(keep);
  }
  if (scratch.empty()) return;
  // Serial insertion chronology: a serial run inserts each delivery at
  // the producer's transmission start, so (arrival, pushed_at) is the
  // dispatch-order key; (src_shard, seq) breaks the sub-ordering-tick
  // ties the serial interleave cannot be reconstructed for.
  std::sort(scratch.begin(), scratch.end(),
            [](const BoundaryMessage& a, const BoundaryMessage& b) {
              return std::tie(a.arrival, a.pushed_at, a.src_shard, a.seq) <
                     std::tie(b.arrival, b.pushed_at, b.src_shard, b.seq);
            });
  Scheduler& sched = *scheds_[shard];
  const util::Time now = sched.now();
  for (const BoundaryMessage& m : scratch) {
    assert(m.arrival > now);
    // Re-home into this shard's pool and reuse the zero-allocation
    // delivery fast path; the Link pointer is only delivery context
    // (destination node), never transmitter state, on this shard.
    const std::uint64_t ot = Scheduler::order_tick(m.pushed_at);
    if (ot != inj_tick_[shard]) {
      inj_tick_[shard] = ot;
      inj_intra_[shard] = 0;
    }
    const PacketHandle h = sched.packet_pool().acquire(m.pkt);
    sched.schedule_injected_delivery(m.arrival - now, *m.link, h,
                                     m.pushed_at, inj_intra_[shard]++);
  }
}

void ShardedRun::run_until(util::Time horizon) {
  const util::Time start = scheds_[0]->now();
  if (horizon <= start) return;
  const util::Duration w =
      plan_.window > 0 ? plan_.window : horizon - start;
  // Every worker derives the same iteration count from (start, horizon,
  // window) alone, so an exception on one shard cannot desynchronize
  // the barrier: failed workers keep arriving until the round ends.
  const auto windows = static_cast<std::uint64_t>((horizon - start + w - 1) / w);
  std::vector<std::exception_ptr> excs(
      static_cast<std::size_t>(plan_.shards));
  gang_.run([&](std::size_t shard) {
    telemetry::ScopedRegistry scope(*regs_[shard]);
    Scheduler& sched = *scheds_[shard];
    util::Time t = start;
    for (std::uint64_t i = 0; i < windows; ++i) {
      const util::Time wend = std::min<util::Time>(t + w, horizon);
      if (!abort_.load(std::memory_order_relaxed)) {
        try {
          sched.run_until(wend);
        } catch (...) {
          excs[shard] = std::current_exception();
          abort_.store(true, std::memory_order_relaxed);
        }
      }
      barrier_.arrive_and_wait();
      // Post-barrier, every producer has published window i's boundary
      // traffic; inject everything due in window i+1 — which, by the
      // lookahead bound, is everything that can arrive there.
      if (!abort_.load(std::memory_order_relaxed)) {
        try {
          drain_inbound(shard, wend + w);
        } catch (...) {
          excs[shard] = std::current_exception();
          abort_.store(true, std::memory_order_relaxed);
        }
      }
      t = wend;
    }
  });
  windows_run_ += windows;
  for (auto& e : excs) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardedRun::merge_telemetry() {
  auto& reg = telemetry::registry();
  for (const auto& r : regs_) reg.merge(*r);
  reg.counter("sim.shard.boundary_msgs").add(boundary_messages());
  reg.counter("sim.shard.boundary_spills").add(boundary_spills());
  reg.counter("sim.shard.windows").add(windows_run_);
}

std::uint64_t ShardedRun::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& s : scheds_) total += s->executed_count();
  return total;
}

std::uint64_t ShardedRun::boundary_messages() const {
  std::uint64_t total = 0;
  for (const auto& c : channels_) total += c->pushed();
  return total;
}

std::uint64_t ShardedRun::boundary_spills() const {
  std::uint64_t total = 0;
  for (const auto& c : channels_) total += c->spills();
  return total;
}

}  // namespace phi::sim
