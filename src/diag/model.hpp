// model.hpp — §3.4: a time-series model of the volume of requests a cloud
// service receives, sliced along client dimensions. Each slice learns a
// seasonal baseline (time-of-day x day-of-week buckets); at serving time a
// z-score against the baseline flags anomalous departures, and sustained
// negative departures indicate unreachability.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace phi::diag {

/// A slice of the request volume: (client AS, metro). -1 is a wildcard,
/// so {as, -1} aggregates the AS across metros, {-1, -1} is global.
struct SliceKey {
  int as = -1;
  int metro = -1;

  bool operator==(const SliceKey&) const = default;
  bool is_global() const noexcept { return as == -1 && metro == -1; }
  std::string str() const;
};

struct SliceKeyHash {
  std::size_t operator()(const SliceKey& k) const noexcept {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.as + 1))
         << 32) ^
        static_cast<std::uint32_t>(k.metro + 1) * 0x9E3779B9u);
  }
};

/// Seasonal baseline for one slice: per (bucket-of-day, day-of-week)
/// statistics of observed request counts.
class SeasonalModel {
 public:
  struct Config {
    int minutes_per_bucket = 10;
    int buckets_per_day = 144;  ///< 1440 / minutes_per_bucket
    int days_per_week = 7;
    /// Per-sample forgetting factor of each bucket's statistics. 1.0 =
    /// static model (train once); ~0.8 with continuous learning tracks a
    /// few-percent-per-day drift while keeping weeks of memory.
    double decay = 1.0;
  };

  SeasonalModel() = default;
  explicit SeasonalModel(Config cfg) : cfg_(cfg) {}

  void train(int minute, double value);

  /// Expected value and standard deviation for this minute-of-week.
  /// Returns false when the bucket has too little history.
  bool expectation(int minute, double& mean, double& stddev) const;

  /// Robust z-score of an observation; 0 when the bucket is untrained.
  double zscore(int minute, double value) const;

  std::size_t trained_buckets() const;

 private:
  int bucket_of(int minute) const noexcept;
  Config cfg_{};
  std::unordered_map<int, util::DecayingStats> buckets_;
};

}  // namespace phi::diag
