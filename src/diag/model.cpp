#include "diag/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace phi::diag {

std::string SliceKey::str() const {
  char buf[64];
  if (is_global()) return "(global)";
  if (metro == -1) {
    std::snprintf(buf, sizeof buf, "(as%d, *)", as);
  } else if (as == -1) {
    std::snprintf(buf, sizeof buf, "(*, metro%d)", metro);
  } else {
    std::snprintf(buf, sizeof buf, "(as%d, metro%d)", as, metro);
  }
  return buf;
}

int SeasonalModel::bucket_of(int minute) const noexcept {
  const int minutes_per_week = 1440 * cfg_.days_per_week;
  const int m = ((minute % minutes_per_week) + minutes_per_week) %
                minutes_per_week;
  return m / cfg_.minutes_per_bucket;
}

void SeasonalModel::train(int minute, double value) {
  auto [it, inserted] =
      buckets_.try_emplace(bucket_of(minute), util::DecayingStats(cfg_.decay));
  it->second.add(value);
}

bool SeasonalModel::expectation(int minute, double& mean,
                                double& stddev) const {
  auto it = buckets_.find(bucket_of(minute));
  if (it == buckets_.end() || it->second.weight() < 3) return false;
  mean = it->second.mean();
  // Floor the deviation so that near-constant training data doesn't make
  // the z-score explode on benign noise.
  stddev = std::max(it->second.stddev(), std::max(1.0, 0.02 * mean));
  return true;
}

double SeasonalModel::zscore(int minute, double value) const {
  double mean = 0, sd = 0;
  if (!expectation(minute, mean, sd)) return 0.0;
  return (value - mean) / sd;
}

std::size_t SeasonalModel::trained_buckets() const { return buckets_.size(); }

}  // namespace phi::diag
