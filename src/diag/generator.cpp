#include "diag/generator.hpp"

#include <cmath>

namespace phi::diag {

double RequestGenerator::cell_base(int as, int metro) const noexcept {
  // Stable per-cell size factor in [0.25, 4): some ISPs/metros are much
  // bigger than others. Derived from the seed so the population is fixed.
  std::uint64_t h = cfg_.seed;
  h ^= static_cast<std::uint64_t>(as) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(metro) * 0xC2B2AE3D27D4EB4FULL;
  const double u = static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  return cfg_.base_rpm * std::exp((u - 0.5) * 2.0);  // e^-1 .. e^1
}

double RequestGenerator::season(int minute) const noexcept {
  const int minute_of_day = ((minute % 1440) + 1440) % 1440;
  const int day = (minute / 1440) % 7;
  // Diurnal: trough ~4am, peak ~4pm.
  const double phase =
      2.0 * M_PI * (static_cast<double>(minute_of_day) - 240.0) / 1440.0;
  double s = 1.0 + cfg_.daily_amplitude * 0.5 * (1.0 - std::cos(phase));
  if (day >= 5) s *= cfg_.weekend_factor;
  return s;
}

double RequestGenerator::expected_cell(int as, int metro, int minute) const {
  double v = cell_base(as, metro) * season(minute);
  if (cfg_.daily_drift != 0.0) {
    v *= std::pow(1.0 + cfg_.daily_drift,
                  static_cast<double>(minute) / 1440.0);
  }
  return v;
}

VolumeSnapshot RequestGenerator::minute_counts(int minute,
                                               bool with_events) const {
  VolumeSnapshot out;
  for (int as = 0; as < cfg_.n_as; ++as) {
    for (int metro = 0; metro < cfg_.n_metros; ++metro) {
      // Deterministic per-(cell, minute) noise stream.
      std::uint64_t h = cfg_.seed ^ 0xABCDEF1234567890ULL;
      h ^= static_cast<std::uint64_t>(minute) * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(as) << 32) ^
           static_cast<std::uint64_t>(metro);
      util::Rng rng(util::splitmix64(h));
      double v = expected_cell(as, metro, minute) *
                 rng.lognormal(0.0, cfg_.noise_sigma);
      if (with_events) {
        for (const auto& ev : events_) {
          if (ev.as == as && ev.metro == metro && ev.active(minute))
            v *= (1.0 - ev.severity);
        }
      }
      out[{as, metro}] = v;
    }
  }
  return out;
}

}  // namespace phi::diag
