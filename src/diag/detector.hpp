// detector.hpp — unreachability detection and localization (§3.4, Fig. 5).
//
// The cloud service aggregates request counts from all clients — affected
// and unaffected — so it can both *detect* (sustained negative departure
// from the seasonal baseline) and *localize* (drill down the dimension
// lattice: global -> per-AS / per-metro -> per-(AS, metro), attributing
// the deficit to the most specific slice that explains most of it).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "diag/model.hpp"

namespace phi::diag {

/// Per-interval request counts at full resolution.
using VolumeSnapshot = std::map<std::pair<int, int>, double>;  // (as,metro)

struct DetectedEvent {
  SliceKey slice;          ///< localized scope
  int start_minute = 0;
  int end_minute = 0;      ///< inclusive; valid once closed
  bool open = true;
  double deficit = 0;      ///< requests lost vs. baseline over the event
  double min_zscore = 0;   ///< depth of the dip

  int duration_minutes() const noexcept {
    return end_minute - start_minute + 1;
  }
};

class UnreachabilityDetector {
 public:
  struct Config {
    double trigger_z = -3.5;   ///< departure that arms an event
    double release_z = -1.5;   ///< recovery level that closes it
    int confirm_intervals = 3; ///< consecutive hits before an event opens
    int release_intervals = 3; ///< consecutive recoveries before close
    /// Fraction of the parent slice's deficit a child must explain to
    /// localize the event one level deeper.
    double localize_share = 0.7;
    SeasonalModel::Config model{};
  };

  UnreachabilityDetector() = default;
  explicit UnreachabilityDetector(Config cfg) : cfg_(cfg) {}

  /// Learn baselines (run over event-free history).
  void train(int minute, const VolumeSnapshot& counts);

  /// Serving phase: score one interval, update event state.
  void observe(int minute, const VolumeSnapshot& counts);

  /// Serving phase with continuous learning: after scoring, absorb the
  /// interval into the baselines of every slice that is *not* currently
  /// anomalous (anomaly gating keeps outages from poisoning the model).
  /// This is how a deployed detector tracks slow traffic drift.
  void observe_and_learn(int minute, const VolumeSnapshot& counts);

  /// Events that have opened (some may still be open).
  const std::vector<DetectedEvent>& events() const noexcept {
    return events_;
  }

  /// Current z-score of a slice (for plotting Fig. 5-style series).
  double zscore(const SliceKey& slice, int minute, double value) const;

  /// Expected volume for a slice at a minute (0 when untrained).
  double expected(const SliceKey& slice, int minute) const;

 private:
  /// All aggregation slices a snapshot expands into.
  static std::map<SliceKey, double, bool (*)(const SliceKey&,
                                             const SliceKey&)>
  aggregate(const VolumeSnapshot& counts);

  struct SliceState {
    SeasonalModel model;
    int below_streak = 0;
    int above_streak = 0;
    bool in_anomaly = false;
    int anomaly_start = 0;
    double deficit = 0;
    double min_z = 0;
  };

  SliceKey localize(int minute, const VolumeSnapshot& counts) const;

  Config cfg_{};
  std::unordered_map<SliceKey, SliceState, SliceKeyHash> slices_;
  std::vector<DetectedEvent> events_;
  std::optional<std::size_t> open_event_;
};

}  // namespace phi::diag
