#include "diag/detector.hpp"

#include <algorithm>

namespace phi::diag {

namespace {

bool slice_less(const SliceKey& a, const SliceKey& b) {
  if (a.as != b.as) return a.as < b.as;
  return a.metro < b.metro;
}

int specificity(const SliceKey& k) {
  return (k.as != -1 ? 1 : 0) + (k.metro != -1 ? 1 : 0);
}

}  // namespace

std::map<SliceKey, double, bool (*)(const SliceKey&, const SliceKey&)>
UnreachabilityDetector::aggregate(const VolumeSnapshot& counts) {
  std::map<SliceKey, double, bool (*)(const SliceKey&, const SliceKey&)>
      out(&slice_less);
  for (const auto& [key, v] : counts) {
    const auto [as, metro] = key;
    out[SliceKey{as, metro}] += v;
    out[SliceKey{as, -1}] += v;
    out[SliceKey{-1, metro}] += v;
    out[SliceKey{-1, -1}] += v;
  }
  return out;
}

void UnreachabilityDetector::train(int minute, const VolumeSnapshot& counts) {
  for (const auto& [slice, v] : aggregate(counts)) {
    auto [it, inserted] = slices_.try_emplace(slice);
    if (inserted) it->second.model = SeasonalModel(cfg_.model);
    it->second.model.train(minute, v);
  }
}

double UnreachabilityDetector::zscore(const SliceKey& slice, int minute,
                                      double value) const {
  auto it = slices_.find(slice);
  return it == slices_.end() ? 0.0 : it->second.model.zscore(minute, value);
}

double UnreachabilityDetector::expected(const SliceKey& slice,
                                        int minute) const {
  auto it = slices_.find(slice);
  if (it == slices_.end()) return 0.0;
  double mean = 0, sd = 0;
  return it->second.model.expectation(minute, mean, sd) ? mean : 0.0;
}

void UnreachabilityDetector::observe(int minute,
                                     const VolumeSnapshot& counts) {
  const auto agg = aggregate(counts);

  for (const auto& [slice, value] : agg) {
    auto it = slices_.find(slice);
    if (it == slices_.end()) continue;  // never trained: can't judge
    SliceState& st = it->second;
    const double z = st.model.zscore(minute, value);
    double mean = 0, sd = 0;
    st.model.expectation(minute, mean, sd);

    if (z <= cfg_.trigger_z) {
      ++st.below_streak;
      st.above_streak = 0;
    } else if (z >= cfg_.release_z) {
      ++st.above_streak;
      st.below_streak = 0;
    } else {
      // Hysteresis band: hold both streaks.
    }

    if (!st.in_anomaly && st.below_streak >= cfg_.confirm_intervals) {
      st.in_anomaly = true;
      st.anomaly_start = minute - cfg_.confirm_intervals + 1;
      st.deficit = 0;
      st.min_z = z;
    }
    if (st.in_anomaly) {
      st.deficit += std::max(mean - value, 0.0);
      st.min_z = std::min(st.min_z, z);
      if (st.above_streak >= cfg_.release_intervals) st.in_anomaly = false;
    }
  }

  if (!open_event_) {
    // Any slice in anomaly? Open an event localized as specifically as
    // the deficits allow.
    bool any = false;
    for (const auto& [slice, value] : agg) {
      auto it = slices_.find(slice);
      if (it != slices_.end() && it->second.in_anomaly) {
        any = true;
        break;
      }
    }
    if (any) {
      DetectedEvent ev;
      ev.slice = localize(minute, counts);
      auto it = slices_.find(ev.slice);
      ev.start_minute =
          it != slices_.end() ? it->second.anomaly_start : minute;
      ev.open = true;
      events_.push_back(ev);
      open_event_ = events_.size() - 1;
    }
  } else {
    DetectedEvent& ev = events_[*open_event_];
    auto it = slices_.find(ev.slice);
    if (it != slices_.end()) {
      ev.deficit = it->second.deficit;
      ev.min_zscore = it->second.min_z;
      if (!it->second.in_anomaly) {
        ev.open = false;
        ev.end_minute = minute - cfg_.release_intervals + 1;
        open_event_.reset();
      }
    } else {
      ev.open = false;
      ev.end_minute = minute;
      open_event_.reset();
    }
  }
}

void UnreachabilityDetector::observe_and_learn(int minute,
                                               const VolumeSnapshot& counts) {
  observe(minute, counts);
  for (const auto& [slice, value] : aggregate(counts)) {
    auto it = slices_.find(slice);
    if (it == slices_.end()) {
      // A slice never seen during training: start learning it now.
      auto [nit, inserted] = slices_.try_emplace(slice);
      if (inserted) nit->second.model = SeasonalModel(cfg_.model);
      nit->second.model.train(minute, value);
      continue;
    }
    // Robust (winsorized) update: confirmed anomalies are fully excluded
    // via in_anomaly; otherwise the sample is clamped to mean +- |trigger|
    // standard deviations before entering the baseline. Outage onsets can
    // therefore only drag the mean by a bounded amount before the event
    // confirms, while sustained drift keeps being absorbed step by step
    // (a hard z-gate would freeze a bucket the first time drift+noise
    // crossed it, and never learn again).
    if (it->second.in_anomaly) continue;
    double mean = 0, sd = 0;
    double sample = value;
    if (it->second.model.expectation(minute, mean, sd)) {
      const double k = std::abs(cfg_.trigger_z);
      sample = std::clamp(value, mean - k * sd, mean + k * sd);
    }
    it->second.model.train(minute, sample);
  }
}

SliceKey UnreachabilityDetector::localize(int, const VolumeSnapshot&) const {
  // Drill down the dimension lattice: at each specificity level keep the
  // anomalous slice with the largest accumulated deficit, and accept a
  // deeper localization only when it explains enough of the level above
  // (otherwise the outage is genuinely broader than one slice).
  SliceKey best_at[3] = {SliceKey{-1, -1}, SliceKey{-1, -1},
                         SliceKey{-1, -1}};
  double deficit_at[3] = {-1, -1, -1};
  bool have_at[3] = {false, false, false};
  for (const auto& [slice, st] : slices_) {
    if (!st.in_anomaly) continue;
    const int spec = specificity(slice);
    if (st.deficit > deficit_at[spec]) {
      deficit_at[spec] = st.deficit;
      best_at[spec] = slice;
      have_at[spec] = true;
    }
  }
  SliceKey chosen{-1, -1};
  double parent_deficit = -1;
  for (int level = 0; level <= 2; ++level) {
    if (!have_at[level]) continue;
    const bool explains_parent =
        parent_deficit <= 0 ||
        deficit_at[level] >= cfg_.localize_share * parent_deficit;
    if (explains_parent) {
      chosen = best_at[level];
      parent_deficit = deficit_at[level];
    }
  }
  return chosen;
}

}  // namespace phi::diag
