// generator.hpp — synthetic request-volume telemetry (substitute for the
// paper's production data; DESIGN.md §5). Each (client AS, metro) cell
// carries a base rate shaped by daily and weekly seasonality plus
// multiplicative lognormal noise. Unreachability events suppress a
// configurable fraction of a cell's traffic for their duration — the
// Figure-5 scenario is one event localized to an ISP x metro for ~2 hours.
#pragma once

#include <cstdint>
#include <vector>

#include "diag/detector.hpp"
#include "util/rng.hpp"

namespace phi::diag {

struct InjectedEvent {
  int as = 0;
  int metro = 0;
  int start_minute = 0;
  int duration_minutes = 120;
  double severity = 0.9;  ///< fraction of the cell's traffic lost

  bool active(int minute) const noexcept {
    return minute >= start_minute &&
           minute < start_minute + duration_minutes;
  }
  int end_minute() const noexcept {
    return start_minute + duration_minutes - 1;
  }
};

class RequestGenerator {
 public:
  struct Config {
    int n_as = 8;
    int n_metros = 6;
    double base_rpm = 3000;      ///< requests/min for an average cell
    double noise_sigma = 0.04;   ///< lognormal sigma of benign noise
    double daily_amplitude = 0.5;///< peak-to-mean diurnal swing
    double weekend_factor = 0.7; ///< weekend traffic multiplier
    /// Slow multiplicative trend per day (e.g. -0.015 = traffic shrinks
    /// 1.5%/day) — the drift that forces detectors to keep learning.
    double daily_drift = 0.0;
    std::uint64_t seed = 99;
  };

  RequestGenerator() = default;
  explicit RequestGenerator(Config cfg) : cfg_(cfg) {}

  void add_event(const InjectedEvent& ev) { events_.push_back(ev); }
  const std::vector<InjectedEvent>& injected() const noexcept {
    return events_;
  }

  /// Deterministic counts for one minute. `with_events` disables
  /// injection (for training on clean history).
  VolumeSnapshot minute_counts(int minute, bool with_events = true) const;

  /// Noise-free expected volume of one cell (for assertions).
  double expected_cell(int as, int metro, int minute) const;

  const Config& config() const noexcept { return cfg_; }

 private:
  double cell_base(int as, int metro) const noexcept;
  double season(int minute) const noexcept;

  Config cfg_{};
  std::vector<InjectedEvent> events_;
};

}  // namespace phi::diag
