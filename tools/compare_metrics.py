#!/usr/bin/env python3
"""Allow-additions comparison for metrics artifacts.

Usage: compare_metrics.py BASE HEAD

Every metric the BASE artifact emitted must appear in HEAD with an
identical value; HEAD may add new metrics (a change that introduces new
telemetry is fine, drift in existing values is not). Works on both the
`*_metrics.json` registry dump and the `*_metrics.prom` text form, picked
by file extension. Exits nonzero listing the offending metrics.
"""
import json
import sys


def load_json(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for kind, entries in doc.items():
        if not isinstance(entries, list):
            continue
        for e in entries:
            key = (kind, e.get("name", ""),
                   tuple(sorted(e.get("labels", {}).items())))
            val = {k: v for k, v in e.items() if k not in ("name", "labels")}
            out[key] = json.dumps(val, sort_keys=True)
    return out


def load_prom(path):
    out = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            series, _, value = line.rpartition(" ")
            out.setdefault(series, []).append(value)
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    base_path, head_path = sys.argv[1], sys.argv[2]
    loader = load_prom if base_path.endswith(".prom") else load_json
    base, head = loader(base_path), loader(head_path)
    bad = []
    for key, val in sorted(base.items()):
        if key not in head:
            bad.append(f"missing in head: {key} = {val}")
        elif head[key] != val:
            bad.append(f"value drift: {key}: base {val} != head {head[key]}")
    if bad:
        print(f"{head_path} diverges from {base_path}:")
        for b in bad:
            print(f"  {b}")
        sys.exit(1)
    extra = len(head) - len(base)
    print(f"{head_path}: {len(base)} base metrics match"
          + (f", {extra} new in head" if extra else ""))


if __name__ == "__main__":
    main()
