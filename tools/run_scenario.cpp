// run_scenario — the unified bench driver: run any named scenario preset
// (dumbbell or parking lot) under all-Cubic senders and emit the standard
// CSV + metrics artifacts. Usage:
//
//   run_scenario --list
//   run_scenario <preset> [key=value ...] [--runs N]
//
// `key=value` overrides tweak the preset (seed, duration_s, pairs,
// rate_mbps, hops, ... — see docs/SCENARIOS.md); repetitions are seeded
// with util::derive_seed(seed, rep) and run PHI_BENCH_JOBS-wide.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/pool.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "phi/sweep.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

int list_presets() {
  std::printf("available scenario presets:\n\n");
  for (const auto& p : core::presets::registry()) {
    std::printf("  %-22s [%s, %zu senders]  %s\n", p.name.c_str(),
                sim::topology_class(p.spec.topology), p.spec.sender_count(),
                p.summary.c_str());
  }
  std::printf(
      "\nrun one with: run_scenario <preset> [key=value ...] [--runs N]\n"
      "overrides: seed duration_s warmup_s ecn on_bytes off_s "
      "start_with_off\n"
      "  dumbbell: pairs rate_mbps rtt_ms queue jitter_ms buffer_bdp\n"
      "  parking lot: hops cross_per_hop long_flows hop_rate_mbps "
      "hop_delay_ms buffer_bdp\n");
  return 0;
}

std::vector<std::string> metrics_row(const std::string& label,
                                     const core::ScenarioMetrics& m) {
  return {label,
          util::TextTable::num(m.throughput_bps, 0),
          util::TextTable::num(m.mean_queue_delay_s * 1e3, 2),
          util::TextTable::num(m.loss_rate, 5),
          util::TextTable::num(m.utilization, 3),
          util::TextTable::num(m.mean_rtt_s * 1e3, 2),
          std::to_string(m.connections),
          std::to_string(m.timeouts),
          util::TextTable::num(m.power_l(), 0)};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: run_scenario --list | <preset> [key=value ...] "
                 "[--runs N]\n");
    return argc < 2 ? 2 : 0;
  }
  if (std::strcmp(argv[1], "--list") == 0) return list_presets();

  const std::string name = argv[1];
  const core::presets::Preset* preset = core::presets::find(name);
  if (preset == nullptr) {
    std::fprintf(stderr,
                 "unknown preset '%s'; run_scenario --list shows them\n",
                 name.c_str());
    return 2;
  }

  core::ScenarioSpec spec = preset->spec;
  int runs = bench::scale_from_env() == bench::Scale::kFull ? 4 : 2;
  for (int a = 2; a < argc; ++a) {
    if (std::strcmp(argv[a], "--runs") == 0 && a + 1 < argc) {
      runs = std::atoi(argv[++a]);
      if (runs < 1) {
        std::fprintf(stderr, "--runs wants an integer >= 1\n");
        return 2;
      }
      continue;
    }
    std::string err;
    if (!core::presets::apply_override(spec, argv[a], &err)) {
      std::fprintf(stderr, "bad override: %s\n", err.c_str());
      return 2;
    }
  }

  bench::banner(("Scenario driver: " + name).c_str());
  std::printf("topology %s, %zu senders, %zu path(s), %d repetition(s)\n",
              sim::topology_class(spec.topology), spec.sender_count(),
              sim::path_count(spec.topology), runs);

  // Repetitions are independent simulations under common-random-number
  // seeding; parallel_map keeps results in submission order, so the
  // artifacts are identical for any PHI_BENCH_JOBS.
  std::vector<int> reps(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) reps[static_cast<std::size_t>(r)] = r;
  bench::WallTimer timer;
  const auto all = exec::parallel_map(
      reps,
      [&](int r) {
        core::ScenarioSpec run_spec = spec;
        run_spec.seed =
            util::derive_seed(spec.seed, static_cast<std::uint64_t>(r));
        return core::run_cubic_scenario(run_spec, tcp::CubicParams{});
      },
      bench::jobs_from_env());

  bench::ResultTable t("run_scenario_" + name + ".csv",
                       {"rep", "tput_bps", "qdelay_ms", "loss", "util",
                        "rtt_ms", "conns", "timeouts", "power_l"});
  core::ScenarioMetrics mean;
  {
    std::vector<core::ScenarioMetrics> copy(all.begin(), all.end());
    mean = core::average_metrics(copy);
  }
  for (std::size_t r = 0; r < all.size(); ++r)
    t.row(metrics_row(std::to_string(r), all[r]));
  t.row(metrics_row("mean", mean));
  t.print_and_dump();

  // Per-group breakdown when the population defines reporting groups.
  if (!all.empty() && !all.front().groups.empty()) {
    bench::ResultTable g("run_scenario_" + name + "_groups.csv",
                         {"rep", "group", "tput_bps", "rtt_ms", "rtx_rate",
                          "conns"});
    for (std::size_t r = 0; r < all.size(); ++r) {
      for (const auto& gm : all[r].groups) {
        g.row({std::to_string(r), std::to_string(gm.group),
               util::TextTable::num(gm.throughput_bps, 0),
               util::TextTable::num(gm.mean_rtt_s * 1e3, 2),
               util::TextTable::num(gm.retransmit_rate, 4),
               std::to_string(gm.connections)});
      }
    }
    g.print_and_dump();
  }
  std::printf("  (%d runs in %.1f s)\n", runs, timer.seconds());
  bench::dump_metrics("run_scenario_" + name);
  return 0;
}
