// run_scenario — the unified bench driver: run any named scenario preset
// (dumbbell or parking lot) under all-Cubic senders and emit the standard
// CSV + metrics artifacts. Usage:
//
//   run_scenario --list
//   run_scenario <preset> [key=value ...] [--runs N] [--shards N]
//                [--trace-flows[=N]] [--timeseries-dt[=S]] [--profile]
//
// `key=value` overrides tweak the preset (seed, duration_s, pairs,
// rate_mbps, hops, ... — see docs/SCENARIOS.md); repetitions are seeded
// with util::derive_seed(seed, rep) and run PHI_BENCH_JOBS-wide.
//
// The observability flags are strictly additive: --trace-flows samples
// 1-in-N flows (default every flow) into a Chrome-trace JSON artifact,
// --timeseries-dt snapshots queue/utilization/cwnd every S simulated
// seconds (default 0.1) into a tidy CSV, and --profile prints the event
// loop's per-event-kind time breakdown. With none of them, the run (and
// every artifact) is byte-identical to a build without telemetry.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/pool.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "phi/sweep.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

int list_presets() {
  std::printf("available scenario presets:\n\n");
  for (const auto& p : core::presets::registry()) {
    std::printf("  %-22s [%s, %zu senders]  %s\n", p.name.c_str(),
                sim::topology_class(p.spec.topology), p.spec.sender_count(),
                p.summary.c_str());
  }
  std::printf(
      "\nrun one with: run_scenario <preset> [key=value ...] [--runs N]\n"
      "overrides: seed duration_s warmup_s ecn on_bytes off_s "
      "start_with_off\n"
      "  churn: churn_per_s churn_zipf churn_alpha churn_min_bytes "
      "churn_max_bytes churn_slots churn_cap\n"
      "  dumbbell: pairs rate_mbps rtt_ms queue jitter_ms buffer_bdp\n"
      "  parking lot: hops cross_per_hop long_flows hop_rate_mbps "
      "hop_delay_ms buffer_bdp\n"
      "  fat tree: k host_rate_mbps fabric_rate_mbps core_rate_mbps "
      "core_delay_ms buffer_bdp\n"
      "  wan graph: sites hosts_per_site chords wan_seed min_rate_mbps "
      "max_rate_mbps min_delay_ms max_delay_ms buffer_bdp\n");
  return 0;
}

std::vector<std::string> metrics_row(const std::string& label,
                                     const core::ScenarioMetrics& m) {
  return {label,
          util::TextTable::num(m.throughput_bps, 0),
          util::TextTable::num(m.mean_queue_delay_s * 1e3, 2),
          util::TextTable::num(m.loss_rate, 5),
          util::TextTable::num(m.utilization, 3),
          util::TextTable::num(m.mean_rtt_s * 1e3, 2),
          std::to_string(m.connections),
          std::to_string(m.timeouts),
          util::TextTable::num(m.power_l(), 0)};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: run_scenario --list | <preset> [key=value ...] "
                 "[--runs N] [--shards N] [--trace-flows[=N]] "
                 "[--timeseries-dt[=S]] [--profile]\n");
    return argc < 2 ? 2 : 0;
  }
  if (std::strcmp(argv[1], "--list") == 0) return list_presets();

  const core::presets::Preset* preset = core::presets::find(argv[1]);
  if (preset == nullptr) {
    std::string valid;
    for (const auto& p : core::presets::registry()) {
      if (!valid.empty()) valid += ", ";
      valid += p.name;
    }
    std::fprintf(stderr, "unknown preset '%s'; valid presets: %s\n",
                 argv[1], valid.c_str());
    return 2;
  }
  // Artifacts use the canonical (dash) spelling even when the preset was
  // named with underscores, so golden filenames stay stable.
  const std::string name = preset->name;

  core::ScenarioSpec spec = preset->spec;
  int runs = bench::scale_from_env() == bench::Scale::kFull ? 4 : 2;
  for (int a = 2; a < argc; ++a) {
    if (std::strcmp(argv[a], "--runs") == 0 && a + 1 < argc) {
      runs = std::atoi(argv[++a]);
      if (runs < 1) {
        std::fprintf(stderr, "--runs wants an integer >= 1\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      const int n = std::atoi(argv[++a]);
      if (n < 1) {
        std::fprintf(stderr, "--shards wants an integer >= 1\n");
        return 2;
      }
      spec.sharding.shards = n;
      continue;
    }
    if (std::strncmp(argv[a], "--trace-flows", 13) == 0) {
      int one_in = 1;
      if (argv[a][13] == '=') one_in = std::atoi(argv[a] + 14);
      if (one_in < 1) {
        std::fprintf(stderr, "--trace-flows wants an integer >= 1\n");
        return 2;
      }
      spec.telemetry.trace_one_in = static_cast<std::uint32_t>(one_in);
      continue;
    }
    if (std::strncmp(argv[a], "--timeseries-dt", 15) == 0) {
      double dt_s = 0.1;
      if (argv[a][15] == '=') dt_s = std::atof(argv[a] + 16);
      if (!(dt_s > 0)) {
        std::fprintf(stderr, "--timeseries-dt wants seconds > 0\n");
        return 2;
      }
      spec.telemetry.timeseries_dt = util::from_seconds(dt_s);
      continue;
    }
    if (std::strcmp(argv[a], "--profile") == 0) {
      spec.telemetry.profile = true;
      continue;
    }
    std::string err;
    if (!core::presets::apply_override(spec, argv[a], &err)) {
      std::fprintf(stderr, "bad override: %s\n", err.c_str());
      return 2;
    }
  }

  bench::phase("setup");
  bench::banner(("Scenario driver: " + name).c_str());
  std::printf("topology %s, %zu senders, %zu path(s), %d repetition(s)\n",
              sim::topology_class(spec.topology), spec.sender_count(),
              sim::path_count(spec.topology), runs);
  const sim::TopologyShape shape = sim::topology_shape(spec.topology);
  std::printf("shape: %zu node(s), %zu link(s), %zu endpoint(s), "
              "%zu monitored path(s)\n",
              shape.nodes, shape.links, shape.endpoints, shape.paths);
  if (spec.churn.enabled())
    std::printf("churn: %.0f arrivals/s, zipf %.2f, pareto %.2f, "
                "%g..%g bytes, %zu slot(s)/endpoint\n",
                spec.churn.arrivals_per_s, spec.churn.zipf_s,
                spec.churn.pareto_alpha, spec.churn.min_bytes,
                spec.churn.max_bytes, spec.churn.slots_per_endpoint);
  if (spec.sharding.shards > 1)
    std::printf("sharding: %d shard(s) requested (deterministic: artifacts "
                "are byte-identical to a serial run)\n",
                spec.sharding.shards);

  // Repetitions are independent simulations under common-random-number
  // seeding; parallel_map keeps results in submission order, so the
  // artifacts are identical for any PHI_BENCH_JOBS.
  std::vector<int> reps(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) reps[static_cast<std::size_t>(r)] = r;
  bench::WallTimer timer;
  bench::phase("run");
  const auto all = exec::parallel_map(
      reps,
      [&](int r) {
        core::ScenarioSpec run_spec = spec;
        run_spec.seed =
            util::derive_seed(spec.seed, static_cast<std::uint64_t>(r));
        return core::run_cubic_scenario(run_spec, tcp::CubicParams{});
      },
      bench::jobs_from_env());
  bench::phase("export");

  bench::ResultTable t("run_scenario_" + name + ".csv",
                       {"rep", "tput_bps", "qdelay_ms", "loss", "util",
                        "rtt_ms", "conns", "timeouts", "power_l"});
  core::ScenarioMetrics mean;
  {
    std::vector<core::ScenarioMetrics> copy(all.begin(), all.end());
    mean = core::average_metrics(copy);
  }
  for (std::size_t r = 0; r < all.size(); ++r)
    t.row(metrics_row(std::to_string(r), all[r]));
  t.row(metrics_row("mean", mean));
  t.print_and_dump();
  if (!all.empty() && all.front().shards_used > 1) {
    // stdout only; the CSV artifacts carry no shard-dependent columns,
    // so they stay byte-identical across --shards values (CI enforces).
    std::printf("  [sharding] %d shards, %llu boundary packet(s)/rep, "
                "%llu event(s)/rep\n",
                all.front().shards_used,
                static_cast<unsigned long long>(all.front().boundary_messages),
                static_cast<unsigned long long>(all.front().events_executed));
  }

  // Per-group breakdown when the population defines reporting groups.
  if (!all.empty() && !all.front().groups.empty()) {
    bench::ResultTable g("run_scenario_" + name + "_groups.csv",
                         {"rep", "group", "tput_bps", "rtt_ms", "rtx_rate",
                          "conns"});
    for (std::size_t r = 0; r < all.size(); ++r) {
      for (const auto& gm : all[r].groups) {
        g.row({std::to_string(r), std::to_string(gm.group),
               util::TextTable::num(gm.throughput_bps, 0),
               util::TextTable::num(gm.mean_rtt_s * 1e3, 2),
               util::TextTable::num(gm.retransmit_rate, 4),
               std::to_string(gm.connections)});
      }
    }
    g.print_and_dump();
  }
  // Per-rep churn breakdown when the preset drives open-loop arrivals.
  if (!all.empty() && all.front().churn.enabled) {
    bench::ResultTable c("run_scenario_" + name + "_churn.csv",
                         {"rep", "offered", "completed", "measured",
                          "deferred", "fct_p50_ms", "fct_p90_ms",
                          "fct_p99_ms", "fct_mean_ms", "wait_mean_ms",
                          "goodput_bps"});
    for (std::size_t r = 0; r < all.size(); ++r) {
      const auto& ch = all[r].churn;
      c.row({std::to_string(r), std::to_string(ch.offered),
             std::to_string(ch.completed), std::to_string(ch.measured),
             std::to_string(ch.deferred),
             util::TextTable::num(ch.fct_p50_s * 1e3, 2),
             util::TextTable::num(ch.fct_p90_s * 1e3, 2),
             util::TextTable::num(ch.fct_p99_s * 1e3, 2),
             util::TextTable::num(ch.fct_mean_s * 1e3, 2),
             util::TextTable::num(ch.wait_mean_s * 1e3, 2),
             util::TextTable::num(ch.goodput_bps, 0)});
    }
    c.print_and_dump();
  }
  // Observability artifacts (opt-in; nothing is written without the
  // flags, so default artifacts stay byte-identical). Repetition 0's
  // capture is exported — it is the same object for any PHI_BENCH_JOBS.
  if (spec.telemetry.any() && !all.empty() && all.front().capture) {
    const std::string dir = bench::out_dir();
    const auto& cap = *all.front().capture;
    if (spec.telemetry.trace_one_in > 0 && !dir.empty()) {
      const std::string path = dir + "/run_scenario_" + name + "_trace.json";
      if (cap.spans.write_chrome_json(path)) {
        std::printf("  [trace] %s (%zu span events, %zu dropped)\n",
                    path.c_str(), cap.spans.events().size(),
                    cap.spans.dropped());
      }
    }
    if (spec.telemetry.timeseries_dt > 0 && !dir.empty()) {
      const std::string path =
          dir + "/run_scenario_" + name + "_timeseries.csv";
      if (telemetry::registry().write_timeseries_csv(path))
        std::printf("  [timeseries] %s\n", path.c_str());
    }
    if (spec.telemetry.profile) {
      telemetry::LoopProfile prof;
      for (const auto& m : all)
        if (m.capture) prof.merge(m.capture->profile);
      std::printf("\nevent-loop profile (all repetitions):\n%s",
                  prof.table().c_str());
    }
  }
  std::printf("  (%d runs in %.1f s)\n", runs, timer.seconds());
  // Topology shape: gauges in the metrics dump (identical for every
  // jobs/shards value — it is a pure function of the spec) and the full
  // record in the provenance sidecar.
  {
    auto& reg = telemetry::registry();
    reg.gauge("scenario.topology.nodes")
        .set(static_cast<double>(shape.nodes));
    reg.gauge("scenario.topology.links")
        .set(static_cast<double>(shape.links));
    reg.gauge("scenario.topology.endpoints")
        .set(static_cast<double>(shape.endpoints));
    reg.gauge("scenario.topology.paths")
        .set(static_cast<double>(shape.paths));
    char topo_json[192];
    std::snprintf(topo_json, sizeof topo_json,
                  "{\"class\":\"%s\",\"nodes\":%zu,\"links\":%zu,"
                  "\"endpoints\":%zu,\"paths\":%zu}",
                  shape.klass, shape.nodes, shape.links, shape.endpoints,
                  shape.paths);
    bench::set_run_info("topology", topo_json);
  }
  bench::dump_metrics("run_scenario_" + name);
  return 0;
}
