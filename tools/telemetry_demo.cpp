// telemetry_demo — end-to-end exercise of the telemetry subsystem: runs
// the Figure-1 dumbbell with a faulty Phi control plane, every built-in
// instrument live, a trace sink installed, causal flow tracing of every
// flow, time-series capture, event-loop profiling, and the flight
// recorder armed to dump on the first injected fault — then dumps all
// exporter formats:
//
//   telemetry_demo [--help] [out_dir]   (default: telemetry_demo_out)
//     out_dir/trace.json          Chrome trace_event JSON — load in
//                                 about://tracing or ui.perfetto.dev
//     out_dir/trace.jsonl         one JSON object per event
//     out_dir/spans.json          causal flow spans (Chrome trace JSON
//                                 with flow arrows; Perfetto-viewable)
//     out_dir/timeseries.csv      tidy time-series capture
//     out_dir/flight_dump.txt     flight-recorder dump, auto-fired by
//                                 the first injected control-plane fault
//     out_dir/metrics.prom        Prometheus text exposition
//     out_dir/metrics.json        registry snapshot as JSON
//     out_dir/metrics.csv         flat CSV of every instrument
//
// The run covers all instrumented layers: scheduler (dispatch/compaction
// plus the self-profiling run loop), bottleneck link + RED queue
// (drops/marks/occupancy), TCP senders (retransmits, cwnd cuts), context
// server (lookups/reports/leases + aggregation spans), and the fault
// injector (drops/dups/delays/crashes actually fired, each noted in the
// flight recorder).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "phi/fault_injection.hpp"
#include "phi/scenario.hpp"
#include "tcp/tracer.hpp"
#include "telemetry/telemetry.hpp"

using namespace phi;

namespace {
constexpr core::PathKey kPath = 42;
}

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    std::fprintf(stderr,
                 "usage: telemetry_demo [out_dir]   (default: "
                 "telemetry_demo_out)\n"
                 "writes trace.json trace.jsonl spans.json timeseries.csv "
                 "flight_dump.txt metrics.{prom,json,csv} into out_dir\n");
    return 0;
  }
  const std::string out = argc > 1 ? argv[1] : "telemetry_demo_out";
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out.c_str(),
                 ec.message().c_str());
    return 1;
  }

#ifndef PHI_TELEMETRY_OFF
  telemetry::TraceSink sink(telemetry::kAllCategories,
                            /*max_events=*/2'000'000);
  telemetry::set_tracer(&sink);
#endif
  // Black box armed on the fault category: the first injected fault
  // writes the whole per-component event history to disk, exactly the
  // "what led up to this?" artifact the recorder exists for.
  telemetry::flight().arm(
      telemetry::mask_of(telemetry::Category::kFault),
      out + "/flight_dump.txt");

  core::ScenarioConfig cfg;
  cfg.net.pairs = 8;
  cfg.net.queue = sim::DumbbellConfig::Queue::kRedEcn;
  cfg.workload.mean_on_bytes = 60e3;
  cfg.workload.mean_off_s = 0.4;
  cfg.duration = util::seconds(30);
  cfg.ecn = true;
  cfg.seed = 7;

  core::ScenarioSpec spec = cfg.spec();
  spec.telemetry.trace_one_in = 1;  // causal-trace every flow
  spec.telemetry.timeseries_dt = util::milliseconds(250);
  spec.telemetry.profile = true;

  std::unique_ptr<core::ContextServer> server;
  std::unique_ptr<core::FaultInjector> injector;
  std::unique_ptr<tcp::SenderTracer> tracer;

  const auto metrics = core::run_scenario_with_setup(
      spec, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.dumbbell->scheduler();
        server = std::make_unique<core::ContextServer>(
            core::ContextServerConfig{},
            [sched] { return sched->now(); });
        server->set_path_capacity(kPath,
                                  live.dumbbell->config().bottleneck_rate);
        core::FaultConfig fc;
        fc.drop_lookup = 0.02;
        fc.drop_report = 0.02;
        fc.duplicate_report = 0.05;
        fc.delay_report = 0.05;
        fc.reorder_report = 0.02;
        fc.crash = 0.01;
        fc.seed = 99;
        injector =
            std::make_unique<core::FaultInjector>(*sched, *server, fc);
        tracer = std::make_unique<tcp::SenderTracer>(
            *sched, *live.senders.front());
        // End-of-run teardown must run while the scheduler is still
        // alive (it dies with the scenario): flush() may schedule a
        // delayed delivery and stop() cancels the pending sample.
        sched->schedule_in(cfg.duration - 1, [&] {
          injector->flush();
          tracer->stop();
          (void)server->serialize_state();  // snapshot instruments
        });
        return [&](std::size_t i) {
          return std::make_unique<core::FaultyPhiAdvisor>(*injector, kPath,
                                                          i);
        };
      });

  auto& reg = telemetry::registry();
  const bool ok = reg.write_prometheus(out + "/metrics.prom") &&
                  reg.write_json(out + "/metrics.json") &&
                  reg.write_csv(out + "/metrics.csv");
#ifndef PHI_TELEMETRY_OFF
  bool trace_ok = sink.write_chrome_json(out + "/trace.json") &&
                  sink.write_jsonl(out + "/trace.jsonl");
  std::printf("trace events: %zu (%llu dropped)\n", sink.events().size(),
              static_cast<unsigned long long>(sink.dropped()));
  if (metrics.capture) {
    trace_ok = trace_ok &&
               metrics.capture->spans.write_chrome_json(out + "/spans.json");
    std::printf("span events: %zu (%zu dropped)\n",
                metrics.capture->spans.events().size(),
                metrics.capture->spans.dropped());
    std::printf("\nevent-loop profile:\n%s",
                metrics.capture->profile.table().c_str());
  }
  trace_ok = trace_ok && reg.write_timeseries_csv(out + "/timeseries.csv");
  const auto& fr = telemetry::flight();
  std::printf("flight recorder: %llu events recorded, auto-dump %s\n",
              static_cast<unsigned long long>(fr.recorded()),
              fr.last_dump_path().empty() ? "(never fired)"
                                          : fr.last_dump_path().c_str());
  telemetry::set_tracer(nullptr);
#else
  const bool trace_ok = true;
  std::printf("telemetry compiled out (PHI_TELEMETRY_OFF); metric/trace "
              "artifacts are empty\n");
#endif

  std::printf("scenario: %.2f Mbps aggregate, loss %.4f, util %.2f, "
              "%lld connections\n",
              metrics.throughput_bps / 1e6, metrics.loss_rate,
              metrics.utilization,
              static_cast<long long>(metrics.connections));
  std::printf("registry instruments: %zu\n", reg.size());
  std::printf("artifacts in %s: metrics.prom metrics.json metrics.csv "
              "trace.json trace.jsonl spans.json timeseries.csv "
              "flight_dump.txt\n",
              out.c_str());
  if (!ok || !trace_ok) {
    std::fprintf(stderr, "failed writing artifacts to %s\n", out.c_str());
    return 1;
  }
  return 0;
}
