// run_report — one-stop observability report. Runs a scenario preset
// with the full telemetry stack on (causal flow tracing of every flow, a
// Phi control plane so the report->aggregate->recommend->adopt chain is
// live, time-series capture, and event-loop profiling) and fuses the
// results into a single self-contained report:
//
//   run_report <preset> [key=value ...] [--html] [--timeseries-dt=S]
//
//   <out>/report_<preset>.md          the report (or .html with --html)
//   <out>/report_<preset>_trace.json  Chrome trace_event JSON — open in
//                                     ui.perfetto.dev to see the causal
//                                     chain's flow arrows
//   <out>/report_<preset>_timeseries.csv  tidy time-series capture
//
// `out` is PHI_BENCH_OUT (default bench_results). The report contains
// the run's headline metrics, a verification of the causal span chain
// (counts per hop and paired flow arrows), the event-loop profile, a
// per-series time-series summary, and the flight recorder's view of the
// run — everything needed to understand one run, in one file.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 1;

/// Counts per span-event name, plus flow-arrow pairing stats.
struct SpanDigest {
  std::map<std::string, std::size_t> by_name;
  std::size_t arrows_out = 0;
  std::size_t arrows_in = 0;
  std::size_t arrows_paired = 0;
  std::size_t traces = 0;

  explicit SpanDigest(const telemetry::SpanLog& log) {
    std::set<std::uint32_t> outs, ins, tids;
    for (const auto& e : log.events()) {
      tids.insert(e.trace);
      if (e.phase == 's') {
        ++arrows_out;
        outs.insert(e.bind);
      } else if (e.phase == 'f') {
        ++arrows_in;
        ins.insert(e.bind);
      } else {
        ++by_name[e.name];
      }
    }
    for (std::uint32_t b : ins)
      if (outs.count(b) > 0) ++arrows_paired;
    traces = tids.size();
  }

  std::size_t count(const char* name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? 0 : it->second;
  }
};

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: run_report <preset> [key=value ...] [--html] "
                 "[--timeseries-dt=S]\n"
                 "presets: run_scenario --list\n");
    return argc < 2 ? 2 : 0;
  }
  const std::string name = argv[1];
  const core::presets::Preset* preset = core::presets::find(name);
  if (preset == nullptr) {
    std::fprintf(stderr,
                 "unknown preset '%s'; run_scenario --list shows them\n",
                 name.c_str());
    return 2;
  }

  bench::phase("setup");
  core::ScenarioSpec spec = preset->spec;
  bool html = false;
  double dt_s = 0.25;
  for (int a = 2; a < argc; ++a) {
    if (std::strcmp(argv[a], "--html") == 0) {
      html = true;
      continue;
    }
    if (std::strncmp(argv[a], "--timeseries-dt", 15) == 0) {
      if (argv[a][15] == '=') dt_s = std::atof(argv[a] + 16);
      if (!(dt_s > 0)) {
        std::fprintf(stderr, "--timeseries-dt wants seconds > 0\n");
        return 2;
      }
      continue;
    }
    std::string err;
    if (!core::presets::apply_override(spec, argv[a], &err)) {
      std::fprintf(stderr, "bad override: %s\n", err.c_str());
      return 2;
    }
  }

  // The full stack: every flow traced, time-series on, profiler on.
  spec.telemetry.trace_one_in = 1;
  spec.telemetry.timeseries_dt = util::from_seconds(dt_s);
  spec.telemetry.profile = true;

  bench::banner(("Run report: " + name).c_str());

  // A live Phi control plane so the causal chain has something to show:
  // every sender looks up / reports through a shared context server, and
  // a pre-seeded recommendation table guarantees lookups return tuned
  // parameters (has_recommendation) from the first connection on.
  std::unique_ptr<core::ContextServer> server;
  std::vector<std::unique_ptr<core::PhiCubicAdvisor>> advisors_keepalive;

  bench::phase("run");
  const auto metrics = core::run_scenario_with_setup(
      spec, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.topology->scheduler();
        server = std::make_unique<core::ContextServer>(
            core::ContextServerConfig{}, [sched] { return sched->now(); });
        if (live.dumbbell != nullptr) {
          server->set_path_capacity(
              kPath, live.dumbbell->config().bottleneck_rate);
        }
        core::RecommendationTable table;
        tcp::CubicParams tuned;
        tuned.window_init = 8;
        tuned.beta = 0.15;
        for (int u = 0; u < 5; ++u)
          for (int n = 0; n < 8; ++n)
            table.set(core::ContextBucket{u, n}, tuned);
        server->set_recommendations(std::move(table));
        core::ContextServer* srv = server.get();
        return [srv, sched](std::size_t i) {
          return std::make_unique<core::PhiCubicAdvisor>(
              *srv, kPath, i + 1, [sched] { return sched->now(); });
        };
      });

  bench::phase("export");
  const std::string dir = bench::out_dir();
  if (dir.empty()) {
    std::fprintf(stderr, "PHI_BENCH_OUT is empty: nowhere to write\n");
    return 1;
  }
  const std::string stem = dir + "/report_" + name;
  const std::string trace_path = stem + "_trace.json";
  const std::string ts_path = stem + "_timeseries.csv";
  const std::string report_path = stem + (html ? ".html" : ".md");

  bool artifacts_ok = true;
  std::size_t span_events = 0;
  if (metrics.capture) {
    artifacts_ok &= metrics.capture->spans.write_chrome_json(trace_path);
    span_events = metrics.capture->spans.events().size();
  }
  artifacts_ok &= telemetry::registry().write_timeseries_csv(ts_path);

  // ---- compose the report -------------------------------------------
  std::ostringstream md;
  md << "# Phi run report — " << name << "\n\n";
  md << "Preset `" << name << "`: " << preset->summary << ". "
     << spec.sender_count() << " senders, "
     << util::to_seconds(spec.duration) << " s simulated, seed "
     << spec.seed << ". Full telemetry: every flow traced, time-series "
     << "every " << dt_s << " s, event loop profiled.\n\n";

  md << "## Run summary\n\n"
     << "| metric | value |\n|---|---|\n"
     << "| throughput | " << metrics.throughput_bps / 1e6 << " Mbps |\n"
     << "| bottleneck queue delay | " << metrics.mean_queue_delay_s * 1e3
     << " ms |\n"
     << "| loss rate | " << metrics.loss_rate << " |\n"
     << "| utilization | " << metrics.utilization << " |\n"
     << "| mean RTT | " << metrics.mean_rtt_s * 1e3 << " ms |\n"
     << "| connections | " << metrics.connections << " |\n"
     << "| timeouts | " << metrics.timeouts << " |\n";
  {
    // Receive-side health from the tcp.sink.* counters: the fraction of
    // delivered data packets the sink had already seen (spurious
    // retransmissions reaching the receiver). Stub counters read 0 in
    // PHI_TELEMETRY_OFF builds and the row reports 0.
    const auto received =
        telemetry::registry().counter("tcp.sink.packets_received").value();
    const auto dups =
        telemetry::registry().counter("tcp.sink.duplicates").value();
    const double dup_rate =
        received > 0 ? static_cast<double>(dups) /
                           static_cast<double>(received)
                     : 0.0;
    md << "| sink duplicate rate | " << dup_rate << " |\n";
  }
  if (server) {
    md << "| context lookups | " << server->lookups() << " |\n"
       << "| context reports | " << server->reports() << " |\n"
       << "| state version | " << server->state_version() << " |\n";
  }
  md << "\n";

  int chain_rc = 0;
  if (metrics.capture) {
    const SpanDigest digest(metrics.capture->spans);
    md << "## Causal flow chain\n\n"
       << "Every hop of the context protocol appears as a span; Chrome "
          "flow arrows (`s`/`f` pairs) tie report → aggregation → "
          "recommendation → adoption → the next connection's cwnd. Open "
          "`" << trace_path << "` in ui.perfetto.dev to follow them.\n\n"
       << "| hop | span | events |\n|---|---|---|\n"
       << "| 1 | `phi.report` (client) | " << digest.count("phi.report")
       << " |\n"
       << "| 2 | `ctx.aggregate` (server) | "
       << digest.count("ctx.aggregate") << " |\n"
       << "| 3 | `ctx.recommend` (server) | "
       << digest.count("ctx.recommend") << " |\n"
       << "| 4 | `phi.adopt` (client) | " << digest.count("phi.adopt")
       << " |\n"
       << "| 5 | `tcp.conn_start` (cwnd after adoption) | "
       << digest.count("tcp.conn_start") << " |\n\n"
       << digest.traces << " traced flows, " << span_events
       << " span events (" << metrics.capture->spans.dropped()
       << " dropped); flow arrows: " << digest.arrows_out << " out, "
       << digest.arrows_in << " in, " << digest.arrows_paired
       << " ids paired.\n\n";
    md << "Top span kinds:\n\n| span | count |\n|---|---|\n";
    std::vector<std::pair<std::string, std::size_t>> top(
        digest.by_name.begin(), digest.by_name.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second
                                  : a.first < b.first;
    });
    for (std::size_t i = 0; i < top.size() && i < 12; ++i)
      md << "| `" << top[i].first << "` | " << top[i].second << " |\n";
    md << "\n";
    // The acceptance bar for the whole tracing pillar: a complete chain
    // with paired arrows, ending in an adoption followed by a conn start.
    const bool chain_ok = digest.count("phi.report") > 0 &&
                          digest.count("ctx.aggregate") > 0 &&
                          digest.count("ctx.recommend") > 0 &&
                          digest.count("phi.adopt") > 0 &&
                          digest.count("tcp.conn_start") > 0 &&
                          digest.arrows_paired > 0;
    md << (chain_ok ? "**Chain verified**: all four protocol hops "
                      "present with paired flow arrows.\n\n"
                    : "**Chain incomplete** — see counts above.\n\n");
    if (!chain_ok) chain_rc = 1;

    md << "## Event-loop profile\n\n```\n"
       << metrics.capture->profile.table() << "```\n\n";
  }

  md << "## Time series\n\n"
     << "Full data in `" << ts_path << "` (tidy CSV: series, labels, "
     << "t_s, value).\n\n"
     << "| series | labels | samples | min | max | last |\n"
     << "|---|---|---|---|---|---|\n";
  std::size_t ts_rows = 0;
  telemetry::registry().for_each_timeseries(
      [&](const std::string& sname, const telemetry::Labels& labels,
          const telemetry::TimeSeries& ts) {
        if (ts.size() == 0) return;
        ++ts_rows;
        std::string flat;
        for (const auto& [k, v] : labels)
          flat += (flat.empty() ? "" : ";") + k + "=" + v;
        const auto& v = ts.values();
        double mn = v[0], mx = v[0];
        for (double x : v) {
          mn = std::min(mn, x);
          mx = std::max(mx, x);
        }
        md << "| `" << sname << "` | " << flat << " | " << v.size()
           << " | " << mn << " | " << mx << " | " << v.back() << " |\n";
      });
  if (ts_rows == 0) md << "| (no samples) | | | | | |\n";
  md << "\n";

  {
    auto& fr = telemetry::flight();
    md << "## Flight recorder\n\n"
       << fr.recorded() << " events recorded (ring depth " << fr.depth()
       << " per category). Last events per component:\n\n```\n"
       << fr.dump() << "```\n";
  }

  const std::string body = md.str();
  std::string out_text = body;
  if (html) {
    out_text = "<!doctype html><html><head><meta charset=\"utf-8\">"
               "<title>Phi run report — " + name + "</title></head>"
               "<body><pre>" + html_escape(body) + "</pre></body></html>\n";
  }
  std::FILE* f = std::fopen(report_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
    return 1;
  }
  std::fwrite(out_text.data(), 1, out_text.size(), f);
  std::fclose(f);

  std::printf("report: %s\n", report_path.c_str());
  std::printf("trace:  %s (%zu events)\n", trace_path.c_str(), span_events);
  std::printf("series: %s (%zu series)\n", ts_path.c_str(), ts_rows);
#ifndef PHI_TELEMETRY_OFF
  if (!artifacts_ok) {
    std::fprintf(stderr, "failed writing artifacts to %s\n", dir.c_str());
    return 1;
  }
#else
  (void)artifacts_ok;
  std::printf("telemetry compiled out (PHI_TELEMETRY_OFF); the report "
              "has headline metrics only\n");
#endif
  bench::dump_metrics("run_report_" + name);
  return chain_rc;
}
