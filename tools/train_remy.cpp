// train_remy — offline Remy training CLI (the "Remyization" step run by
// the operator, not at experiment time). Trains a whisker tree for the
// chosen signal mode and writes it to a file that table3_remy_phi (via
// PHI_TREE_DIR) and any RemyCC user can load.
//
// Usage:
//   train_remy [--mode classic|ideal|practical] [--rounds N]
//              [--sim-seconds S] [--whiskers W] [--out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "remy/trainer.hpp"
#include "util/rng.hpp"

using namespace phi;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode classic|ideal|practical] [--rounds N]\n"
               "          [--sim-seconds S] [--whiskers W] [--out FILE]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  remy::SignalMode mode = remy::SignalMode::kClassic;
  int rounds = 10;
  int sim_seconds = 20;
  std::size_t whiskers = 24;
  std::string out = "remy_tree.txt";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next();
      if (m == "classic") {
        mode = remy::SignalMode::kClassic;
      } else if (m == "ideal") {
        mode = remy::SignalMode::kPhiIdeal;
      } else if (m == "practical") {
        mode = remy::SignalMode::kPhiPractical;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--rounds") {
      rounds = std::atoi(next());
    } else if (arg == "--sim-seconds") {
      sim_seconds = std::atoi(next());
    } else if (arg == "--whiskers") {
      whiskers = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--out") {
      out = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  remy::TrainerConfig cfg = remy::TrainerConfig::table3(
      mode, util::seconds(sim_seconds));
  cfg.max_rounds = rounds;
  cfg.max_whiskers = whiskers;
  const remy::Trainer trainer(cfg);

  std::printf("training: mode=%s rounds=%d sim=%ds max-whiskers=%zu\n",
              mode == remy::SignalMode::kClassic ? "classic"
              : mode == remy::SignalMode::kPhiIdeal ? "ideal"
                                                    : "practical",
              rounds, sim_seconds, whiskers);
  const remy::WhiskerTree tree =
      trainer.train([](int round, double score) {
        std::printf("  round %2d: objective %.4f\n", round, score);
        std::fflush(stdout);
      });

  std::ofstream f(out);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  f << tree.serialize();
  f.close();  // flush before the read-back check below
  std::printf("wrote %zu whiskers to %s\n", tree.size(), out.c_str());

  // Round-trip sanity + final held-out score.
  std::ifstream back(out);
  std::string text((std::istreambuf_iterator<char>(back)),
                   std::istreambuf_iterator<char>());
  const auto parsed = remy::WhiskerTree::parse(text);
  if (!parsed) {
    std::fprintf(stderr, "round-trip parse failed\n");
    return 1;
  }
  core::ScenarioSpec holdout = cfg.scenarios.front();
  holdout.seed = util::derive_seed(holdout.seed, 1000);
  const auto score = remy::Trainer::score_tree(*parsed, mode, holdout, 2);
  std::printf("held-out: median tput %.2f Mbps, median qdelay %.1f ms, "
              "median log-power %.2f\n",
              score.median_throughput_bps / 1e6,
              score.median_queue_delay_s * 1e3, score.median_log_power);
  return 0;
}
