// fleet_churn.cpp — the fleet-scale capstone: open-loop flow churn over
// generated topologies (k=4 fat tree, 6-site WAN graph), Cubic vs Phi.
//
// The paper's premise is that "five computers" can afford a shared
// context service; this bench exercises the full deployment shape at
// fleet scale: 10^5+ short flows arrive Poisson/Zipf/bounded-Pareto,
// each asks a *regional* aggregator (phi/aggregation.hpp) for context
// before starting, aggregators batch reports/lookups up to the root
// ContextServer, and the root's recommendation table warm-starts Cubic
// per context bucket. Reported per preset x policy: FCT percentiles,
// goodput, control-plane lookups/sec, and aggregator snapshot staleness.
//
// Scale: quick trims the horizon (a few thousand flows per cell, ~secs);
// full runs the presets as declared (~120k / ~108k flows per run).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "phi/aggregation.hpp"
#include "phi/client.hpp"
#include "phi/context_server.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "sim/graph_topology.hpp"
#include "sim/topology.hpp"
#include "tcp/cc.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

using phi::bench::ResultTable;

/// Context-tuned warm starts, the shape the optimizer's sweeps produce
/// (§2.2.1): an uncongested path lets short flows skip the slow-start
/// ramp entirely (window_init dominates FCT when most transfers fit in
/// a handful of windows); a busy or crowded path gets stock caution plus
/// a harder multiplicative decrease so the newcomer cedes quickly.
core::RecommendationTable warm_table() {
  core::RecommendationTable t;
  for (int u = 0; u < 5; ++u) {
    for (int n = 0; n < 8; ++n) {
      tcp::CubicParams p;
      if (u <= 1)
        p.window_init = n <= 2 ? 24 : 12;
      else if (u == 2)
        p.window_init = 8;
      if (u >= 3 || n >= 4) p.beta = 0.4;
      t.set({u, n}, p);
    }
  }
  return t;
}

/// Control-plane state for one Phi run: the root server, one aggregator
/// per topology region, and the counters harvested by on_complete while
/// the topology (and its scheduler) are still alive.
struct PhiRun {
  std::unique_ptr<core::ContextServer> root;
  std::vector<std::unique_ptr<core::AggregatorServer>> aggs;

  std::uint64_t root_lookups = 0;
  std::uint64_t root_reports = 0;
  std::uint64_t agg_lookups = 0;
  std::uint64_t agg_reports = 0;
  std::uint64_t agg_forwarded = 0;
  std::uint64_t agg_flushes = 0;
  std::uint64_t agg_cold = 0;
  std::size_t stale_n = 0;
  double stale_sum_s = 0;
  double stale_max_s = 0;

  double stale_mean_s() const {
    return stale_n != 0 ? stale_sum_s / static_cast<double>(stale_n) : 0.0;
  }
};

core::PolicyFactory cubic_policy() {
  return [](std::size_t) { return std::make_unique<tcp::Cubic>(); };
}

/// One cell: the preset under plain Cubic, or under the aggregation tree
/// with per-slot PhiCubicAdvisors. Serial (shards = 1): setup hooks and
/// sharding are mutually exclusive by design, and the Cubic baseline
/// keeps the same engine path so the comparison is apples-to-apples.
core::ScenarioMetrics run_cell(const core::ScenarioSpec& spec, bool phi,
                               PhiRun* pr) {
  if (!phi) return core::run_scenario(spec, cubic_policy());
  auto setup = [pr](core::LiveScenario& live) -> core::AdvisorFactory {
    auto* g = dynamic_cast<sim::GraphTopology*>(live.topology);
    sim::Scheduler* sched = &live.topology->scheduler();
    auto clock = [sched] { return sched->now(); };
    pr->root = std::make_unique<core::ContextServer>(
        core::ContextServerConfig{}, clock);
    for (std::size_t p = 0; p < live.topology->path_count(); ++p) {
      pr->root->set_path_capacity(static_cast<core::PathKey>(p),
                                  live.topology->path_link(p).rate());
    }
    pr->root->set_recommendations(warm_table());
    const int regions = g != nullptr ? g->regions() : 1;
    for (int r = 0; r < regions; ++r) {
      core::AggregatorConfig ac;
      ac.name = "r" + std::to_string(r);
      pr->aggs.push_back(std::make_unique<core::AggregatorServer>(
          *sched, *pr->root, ac));
    }
    live.churn_advisor = [pr, g, sched,
                          eps = live.churn_endpoints](std::size_t slot)
        -> std::unique_ptr<tcp::ConnectionAdvisor> {
      const std::size_t ep = eps[slot];
      const int region = g != nullptr ? g->endpoint_region(ep) : 0;
      std::size_t path = g != nullptr ? g->endpoint_path(ep) : 0;
      if (path == sim::Topology::kAllPaths) path = 0;
      return std::make_unique<core::PhiCubicAdvisor>(
          *pr->aggs[static_cast<std::size_t>(region)],
          static_cast<core::PathKey>(path),
          /*sender_id=*/900'000 + slot, [sched] { return sched->now(); });
    };
    live.on_complete = [pr] {
      pr->root_lookups = pr->root->lookups();
      pr->root_reports = pr->root->reports();
      for (const auto& a : pr->aggs) {
        pr->agg_lookups += a->lookups();
        pr->agg_reports += a->reports();
        pr->agg_forwarded += a->forwarded();
        pr->agg_flushes += a->flushes();
        pr->agg_cold += a->cold_lookups();
        const auto& st = a->staleness();
        if (st.count() != 0) {
          pr->stale_n += st.count();
          pr->stale_sum_s += st.sum();
          pr->stale_max_s = std::max(pr->stale_max_s, st.max());
        }
      }
    };
    return nullptr;  // churn slots take advisors via churn_advisor
  };
  return core::run_scenario_with_setup(spec, cubic_policy(), setup);
}

struct Cell {
  core::ChurnMetrics churn;
  PhiRun phi;  // zeroed for the Cubic baseline
};

}  // namespace

int main() {
  phi::bench::banner("fleet_churn — open-loop churn over generated "
                     "topologies, Cubic vs Phi aggregation tree");
  const bool full = phi::bench::scale_from_env() == phi::bench::Scale::kFull;

  struct PresetRun {
    const char* preset;
    double quick_duration_s;
  };
  const std::vector<PresetRun> presets = {
      {"fat-tree-churn", 3.0},
      {"wan-churn", 6.0},
  };

  ResultTable table(
      "fleet_churn.csv",
      {"preset", "policy", "flows", "fct_p50_ms", "fct_p90_ms", "fct_p99_ms",
       "fct_mean_ms", "goodput_mbps", "retx", "lookups_per_s",
       "stale_mean_ms", "stale_max_ms"});
  ResultTable vs("fleet_churn_vs.csv",
                 {"preset", "fct_p50_ratio", "fct_p99_ratio",
                  "goodput_ratio", "agg_lookups", "root_lookups",
                  "root_reports", "batches"});

  std::string json = "{\"bench\":\"fleet_churn\",\"scale\":\"" +
                     std::string(full ? "full" : "quick") +
                     "\",\"presets\":{";
  bool first_preset = true;

  for (const auto& p : presets) {
    const core::presets::Preset* preset = core::presets::find(p.preset);
    if (preset == nullptr) {
      std::fprintf(stderr, "preset %s missing from registry\n", p.preset);
      return 1;
    }
    core::ScenarioSpec spec = preset->spec;
    if (!full) spec.duration = util::from_seconds(p.quick_duration_s);
    const double dur_s = util::to_seconds(spec.duration);
    const sim::TopologyShape shape = sim::topology_shape(spec.topology);
    std::printf("\n-- %s: %s topology, %zu nodes / %zu links / %zu "
                "endpoints / %zu paths, %.0f s horizon, %.0f flows/s\n",
                p.preset, shape.klass, shape.nodes, shape.links,
                shape.endpoints, shape.paths, dur_s,
                spec.churn.arrivals_per_s);

    Cell cubic, phi;
    {
      phi::bench::phase("cubic");
      phi::bench::WallTimer t;
      cubic.churn = run_cell(spec, false, nullptr).churn;
      std::printf("   cubic: %" PRIu64 "/%" PRIu64
                  " flows measured, fct p50 %.2f ms  [%.1f s wall]\n",
                  cubic.churn.measured, cubic.churn.offered,
                  cubic.churn.fct_p50_s * 1e3, t.seconds());
    }
    {
      phi::bench::phase("phi");
      phi::bench::WallTimer t;
      phi.churn = run_cell(spec, true, &phi.phi).churn;
      std::printf("   phi:   %" PRIu64 "/%" PRIu64
                  " flows measured, fct p50 %.2f ms, %" PRIu64
                  " agg lookups  [%.1f s wall]\n",
                  phi.churn.measured, phi.churn.offered,
                  phi.churn.fct_p50_s * 1e3, phi.phi.agg_lookups,
                  t.seconds());
    }

    const auto row = [&](const char* policy, const Cell& c, bool is_phi) {
      const double lps =
          is_phi ? static_cast<double>(c.phi.agg_lookups) / dur_s : 0.0;
      table.row({p.preset, policy, std::to_string(c.churn.measured),
                 util::TextTable::num(c.churn.fct_p50_s * 1e3, 2),
                 util::TextTable::num(c.churn.fct_p90_s * 1e3, 2),
                 util::TextTable::num(c.churn.fct_p99_s * 1e3, 2),
                 util::TextTable::num(c.churn.fct_mean_s * 1e3, 2),
                 util::TextTable::num(c.churn.goodput_bps / 1e6, 2),
                 std::to_string(c.churn.retransmits),
                 util::TextTable::num(lps, 1),
                 util::TextTable::num(c.phi.stale_mean_s() * 1e3, 2),
                 util::TextTable::num(c.phi.stale_max_s * 1e3, 2)});
    };
    row("cubic", cubic, false);
    row("phi", phi, true);

    const auto ratio = [](double a, double b) { return b != 0 ? a / b : 0; };
    vs.row({p.preset,
            util::TextTable::num(
                ratio(phi.churn.fct_p50_s, cubic.churn.fct_p50_s), 3),
            util::TextTable::num(
                ratio(phi.churn.fct_p99_s, cubic.churn.fct_p99_s), 3),
            util::TextTable::num(
                ratio(phi.churn.goodput_bps, cubic.churn.goodput_bps), 3),
            std::to_string(phi.phi.agg_lookups),
            std::to_string(phi.phi.root_lookups),
            std::to_string(phi.phi.root_reports),
            std::to_string(phi.phi.agg_flushes)});

    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "%s\"%s\":{\"topology\":{\"class\":\"%s\",\"nodes\":%zu,"
        "\"links\":%zu,\"endpoints\":%zu,\"paths\":%zu},"
        "\"duration_s\":%.1f,\"arrivals_per_s\":%.0f,"
        "\"flows_offered\":%" PRIu64 ",\"cubic\":{\"measured\":%" PRIu64
        ",\"fct_p50_ms\":%.3f,\"fct_p90_ms\":%.3f,\"fct_p99_ms\":%.3f,"
        "\"fct_mean_ms\":%.3f,\"goodput_mbps\":%.2f,\"retransmits\":%" PRIu64
        "},\"phi\":{\"measured\":%" PRIu64
        ",\"fct_p50_ms\":%.3f,\"fct_p90_ms\":%.3f,\"fct_p99_ms\":%.3f,"
        "\"fct_mean_ms\":%.3f,\"goodput_mbps\":%.2f,\"retransmits\":%" PRIu64
        ",\"aggregation\":{\"regions\":%zu,\"lookups\":%" PRIu64
        ",\"lookups_per_s\":%.1f,\"reports\":%" PRIu64
        ",\"cold_lookups\":%" PRIu64 ",\"batches\":%" PRIu64
        ",\"forwarded_reports\":%" PRIu64 ",\"root_lookups\":%" PRIu64
        ",\"root_reports\":%" PRIu64
        ",\"staleness_mean_ms\":%.3f,\"staleness_max_ms\":%.3f}},"
        "\"fct_p50_ratio_phi_over_cubic\":%.3f}",
        first_preset ? "" : ",", p.preset, shape.klass, shape.nodes,
        shape.links, shape.endpoints, shape.paths, dur_s,
        spec.churn.arrivals_per_s, cubic.churn.offered, cubic.churn.measured,
        cubic.churn.fct_p50_s * 1e3, cubic.churn.fct_p90_s * 1e3,
        cubic.churn.fct_p99_s * 1e3, cubic.churn.fct_mean_s * 1e3,
        cubic.churn.goodput_bps / 1e6, cubic.churn.retransmits,
        phi.churn.measured, phi.churn.fct_p50_s * 1e3,
        phi.churn.fct_p90_s * 1e3, phi.churn.fct_p99_s * 1e3,
        phi.churn.fct_mean_s * 1e3, phi.churn.goodput_bps / 1e6,
        phi.churn.retransmits, phi.phi.aggs.size(), phi.phi.agg_lookups,
        static_cast<double>(phi.phi.agg_lookups) / dur_s,
        phi.phi.agg_reports, phi.phi.agg_cold, phi.phi.agg_flushes,
        phi.phi.agg_forwarded, phi.phi.root_lookups, phi.phi.root_reports,
        phi.phi.stale_mean_s() * 1e3, phi.phi.stale_max_s * 1e3,
        cubic.churn.fct_p50_s != 0
            ? phi.churn.fct_p50_s / cubic.churn.fct_p50_s
            : 0.0);
    json += buf;
    first_preset = false;
  }
  json += "}}\n";

  table.print_and_dump();
  vs.print_and_dump();

  const std::string dir = phi::bench::out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/fleet_churn_summary.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("  [json] %s\n", path.c_str());
    }
  }
  phi::bench::dump_metrics("fleet_churn");
  return 0;
}
