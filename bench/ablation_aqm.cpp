// ablation_aqm — how much of Phi's benefit survives active queue
// management? §3.1 grounds Phi's coordination story in the prevalence of
// FIFO drop-tail queues; this ablation swaps the bottleneck for RED+ECN
// and re-runs the Figure-2-style comparison: {drop-tail, RED+ECN} x
// {default Cubic, Phi-tuned Cubic}.
#include <cstdio>

#include "bench_common.hpp"
#include "phi/sweep.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioConfig workload(bool red, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 12;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.net.queue = red ? sim::DumbbellConfig::Queue::kRedEcn
                      : sim::DumbbellConfig::Queue::kDropTail;
  cfg.ecn = red;
  cfg.workload.mean_on_bytes = 500e3;
  cfg.workload.mean_off_s = 2.0;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("Ablation: Phi under RED+ECN vs drop-tail FIFO");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 8 : 4;
  const core::SweepSpec grid =
      bench::scale_from_env() == bench::Scale::kFull
          ? core::SweepSpec::paper()
          : core::SweepSpec::coarse();

  util::TextTable t;
  t.header({"Queue", "Cubic params", "Tput (Mbps)", "Qdelay (ms)", "Loss",
            "P_l (M)"});
  std::vector<std::vector<std::string>> csv;

  for (const bool red : {false, true}) {
    bench::WallTimer timer;
    // Sweep under this queue discipline to find its own optimum.
    const auto sweep = core::run_cubic_sweep(workload(red, 51), grid, runs);
    const auto& dflt = sweep.default_point();
    const auto& best = sweep.best();
    const char* qname = red ? "RED+ECN" : "drop-tail";
    auto row = [&](const char* label, const core::SweepPoint& p) {
      t.row({std::string(qname) + " / " + label, p.params.str(),
             util::TextTable::num(p.mean.throughput_bps / 1e6, 2),
             util::TextTable::num(p.mean.mean_queue_delay_s * 1e3, 1),
             util::TextTable::pct(p.mean.loss_rate, 2),
             util::TextTable::num(p.score / 1e6, 2)});
      csv.push_back({qname, label,
                     util::TextTable::num(p.mean.throughput_bps, 0),
                     util::TextTable::num(p.mean.mean_queue_delay_s * 1e3, 2),
                     util::TextTable::num(p.mean.loss_rate, 5),
                     util::TextTable::num(p.score, 0)});
    };
    row("default", dflt);
    row("phi-tuned", best);
    std::printf("%s sweep: tuned/default P_l = x%.2f   (%.1f s)\n", qname,
                dflt.score > 0 ? best.score / dflt.score : 0.0,
                timer.seconds());
  }

  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nreading: RED+ECN already shortens the default's queue, so Phi's\n"
      "delay advantage shrinks under AQM — but parameter tuning still\n"
      "pays on throughput/P_l, and the paper's drop-tail premise is the\n"
      "deployed reality this ablation quantifies against.\n");
  bench::write_csv("ablation_aqm.csv",
                   {"queue", "setting", "tput_bps", "qdelay_ms", "loss",
                    "power_l"},
                   csv);
  bench::dump_metrics("ablation_aqm");
  return 0;
}
