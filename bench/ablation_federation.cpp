// ablation_federation — §3.1 end to end: "even if such coordination is
// confined to the individual entities among the 'five computers' ...
// there would still be tangible benefits", and competing providers can
// federate a common weather barometer via secure aggregation without
// disclosing their traffic.
//
// Three providers (4 senders each) share one bottleneck. Modes:
//   0 autonomous     — all default Cubic, no servers.
//   1 isolated Phi   — each provider runs its own context server that only
//                      hears its own reports: it *under-estimates* the
//                      shared bottleneck's utilization by ~2/3.
//   2 federated Phi  — every 2 s the providers secure-aggregate their
//                      per-provider delivered rates; each server installs
//                      the fleet-wide utilization as its external view.
// Recommendations come from a shared u-keyed table (conservative when
// hot, front-loaded when cool), so better weather -> better parameters.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/client.hpp"
#include "phi/secure_agg.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 21;
constexpr std::size_t kProviders = 3;
constexpr std::size_t kPerProvider = 4;

core::RecommendationTable make_table() {
  core::RecommendationTable t;
  for (int n = 0; n < 8; ++n) {
    t.set(core::ContextBucket{0, n}, tcp::CubicParams{64, 64, 0.2});
    t.set(core::ContextBucket{1, n}, tcp::CubicParams{64, 32, 0.2});
    t.set(core::ContextBucket{2, n}, tcp::CubicParams{64, 16, 0.2});
    t.set(core::ContextBucket{3, n}, tcp::CubicParams{32, 8, 0.5});
    t.set(core::ContextBucket{4, n}, tcp::CubicParams{8, 2, 0.8});
  }
  return t;
}

struct Outcome {
  double tput = 0;
  double qdelay = 0;
  double loss = 0;
  double power_l = 0;
};

Outcome run_mode(int mode, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = kProviders * kPerProvider;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = 500e3;
  cfg.workload.mean_off_s = 2.0;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;

  // One context server per provider.
  std::vector<std::unique_ptr<core::ContextServer>> servers;
  for (std::size_t p = 0; p < kProviders; ++p) {
    servers.push_back(std::make_unique<core::ContextServer>());
    servers.back()->set_path_capacity(kPath, cfg.net.bottleneck_rate);
    if (mode >= 1) servers.back()->set_recommendations(make_table());
  }

  const auto m = core::run_scenario_with_setup(
      cfg, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.dumbbell->scheduler();

        if (mode == 2) {
          // Federation rounds: secure-aggregate each provider's local
          // utilization estimate; install the total on every server.
          const auto seeds =
              core::derive_pairwise_seeds(kProviders, 0xFED5EED);
          auto round = std::make_shared<std::uint64_t>(0);
          auto tick = std::make_shared<std::function<void()>>();
          *tick = [&, sched, seeds, round, tick] {
            core::SecureAggregator agg(kProviders);
            agg.begin_round(++*round);
            for (std::size_t p = 0; p < kProviders; ++p) {
              core::SecureParticipant part(p, seeds[p]);
              agg.submit(p, part.masked_share(
                                servers[p]->context(kPath).utilization,
                                *round));
            }
            const double fleet_u = std::min(*agg.sum(), 1.0);
            for (auto& s : servers)
              s->set_external_utilization(kPath, fleet_u, sched->now(),
                                          util::seconds(4));
            if (sched->now() < util::seconds(58))
              sched->schedule_in(util::seconds(2), *tick);
          };
          sched->schedule_in(util::seconds(2), *tick);
        }

        if (mode == 0) return nullptr;
        return [&, sched](std::size_t i)
                   -> std::unique_ptr<tcp::ConnectionAdvisor> {
          core::ContextServer& mine = *servers[i % kProviders];
          return std::make_unique<core::PhiCubicAdvisor>(
              mine, kPath, i, [sched] { return sched->now(); });
        };
      });

  Outcome out;
  out.tput = m.throughput_bps;
  out.qdelay = m.mean_queue_delay_s;
  out.loss = m.loss_rate;
  out.power_l = m.power_l();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.1): isolated vs federated cross-provider Phi");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 8 : 4;

  const char* names[] = {"autonomous (no Phi)", "isolated Phi (per provider)",
                         "federated Phi (secure agg)"};
  util::TextTable t;
  t.header({"Mode", "Tput (Mbps)", "Qdelay (ms)", "Loss", "P_l (M)"});
  std::vector<std::vector<std::string>> csv;
  bench::WallTimer timer;
  double pl[3] = {0, 0, 0};
  for (int mode = 0; mode < 3; ++mode) {
    Outcome avg{};
    for (int r = 0; r < runs; ++r) {
      const auto o = run_mode(mode, util::derive_seed(2100, static_cast<std::uint64_t>(r)));
      avg.tput += o.tput / runs;
      avg.qdelay += o.qdelay / runs;
      avg.loss += o.loss / runs;
      avg.power_l += o.power_l / runs;
    }
    pl[mode] = avg.power_l;
    t.row({names[mode], util::TextTable::num(avg.tput / 1e6, 2),
           util::TextTable::num(avg.qdelay * 1e3, 1),
           util::TextTable::pct(avg.loss, 2),
           util::TextTable::num(avg.power_l / 1e6, 2)});
    csv.push_back({names[mode], util::TextTable::num(avg.tput, 0),
                   util::TextTable::num(avg.qdelay * 1e3, 2),
                   util::TextTable::num(avg.loss, 5),
                   util::TextTable::num(avg.power_l, 0)});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nreading: isolated Phi already beats autonomous (x%.2f on P_l) —\n"
      "the paper's 'tangible benefits even without cross-entity sharing'.\n"
      "Federating the weather closes the blind spot (each provider only\n"
      "sees ~1/3 of the bottleneck's load) for another x%.2f, with nothing\n"
      "but masked ring elements crossing company lines.   (%.1f s)\n",
      pl[0] > 0 ? pl[1] / pl[0] : 0, pl[1] > 0 ? pl[2] / pl[1] : 0,
      timer.seconds());
  bench::write_csv("ablation_federation.csv",
                   {"mode", "tput_bps", "qdelay_ms", "loss", "power_l"},
                   csv);
  bench::dump_metrics("ablation_federation");
  return 0;
}
