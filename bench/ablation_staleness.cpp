// ablation_staleness — why is Remy-Phi-practical worse than ideal? The
// context server only hears from connections at their boundaries
// (§2.2.2's minimal-overhead protocol), so its utilization estimate lags
// the live link. This ablation measures that staleness directly: RMSE
// and bias of the server's u against the link monitor's, across workloads
// whose connection grain ranges from chatty to sluggish.
#include <cmath>
#include <cstdio>
#include <iterator>
#include <memory>

#include "bench_common.hpp"
#include "exec/pool.hpp"
#include "phi/client.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 11;

struct TrackingError {
  double rmse = 0;
  double bias = 0;    ///< mean (server - oracle)
  double oracle_mean = 0;
  std::size_t samples = 0;
};

TrackingError run_workload(double mean_on_bytes, double mean_off_s,
                           std::uint64_t seed, bool midstream = false) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 8;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = mean_on_bytes;
  cfg.workload.mean_off_s = mean_off_s;
  cfg.duration = util::seconds(90);
  cfg.seed = seed;

  core::ContextServer server;
  double se = 0, bias = 0, oracle_sum = 0;
  std::size_t n = 0;

  (void)core::run_scenario_with_setup(
      cfg, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        server.set_path_capacity(kPath,
                                 live.dumbbell->config().bottleneck_rate);
        sim::Scheduler* sched = &live.dumbbell->scheduler();
        sim::Dumbbell* d = live.dumbbell;
        // Periodic comparison of the two views, skipping warm-up.
        auto sample = std::make_shared<std::function<void()>>();
        *sample = [&, sched, d, sample] {
          const double oracle = d->monitor().recent_utilization();
          const double est = server.context(kPath).utilization;
          const double err = est - oracle;
          se += err * err;
          bias += err;
          oracle_sum += oracle;
          ++n;
          if (sched->now() < util::seconds(89))
            sched->schedule_in(util::seconds(1), *sample);
        };
        sched->schedule_at(util::seconds(10), *sample);

        return [&, sched,
                midstream](std::size_t i) -> std::unique_ptr<tcp::ConnectionAdvisor> {
          if (midstream) {
            return std::make_unique<core::MidStreamAdvisor>(
                *sched, server, kPath, i, util::seconds(2));
          }
          return std::make_unique<core::ReportOnlyAdvisor>(server, kPath, i);
        };
      });

  TrackingError out;
  out.samples = n;
  if (n > 0) {
    out.rmse = std::sqrt(se / static_cast<double>(n));
    out.bias = bias / static_cast<double>(n);
    out.oracle_mean = oracle_sum / static_cast<double>(n);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: context-server staleness vs connection grain");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 5 : 3;

  struct Case {
    const char* label;
    double on_bytes;
    double off_s;
    bool midstream;
  };
  const Case cases[] = {
      {"chatty (100 KB on / 0.3 s off)", 100e3, 0.3, false},
      {"paper Fig.2 (500 KB on / 2 s off)", 500e3, 2.0, false},
      {"sluggish (4 MB on / 6 s off)", 4e6, 6.0, false},
      {"sluggish + mid-stream reports (2 s)", 4e6, 6.0, true},
  };

  util::TextTable t;
  t.header({"Workload", "Oracle mean u", "Server RMSE", "Server bias"});
  std::vector<std::vector<std::string>> csv;
  bench::WallTimer timer;

  // Every (case, repetition) is an independent 90 s simulation — run the
  // whole matrix through one parallel batch, then aggregate per case in
  // the original loop order.
  struct Job {
    std::size_t case_idx;
    int rep;
  };
  std::vector<Job> batch;
  for (std::size_t c = 0; c < std::size(cases); ++c)
    for (int r = 0; r < runs; ++r) batch.push_back(Job{c, r});
  const auto errors = exec::parallel_map(
      batch,
      [&](const Job& j) {
        const auto& c = cases[j.case_idx];
        return run_workload(
            c.on_bytes, c.off_s,
            util::derive_seed(1700, static_cast<std::uint64_t>(j.rep)),
            c.midstream);
      },
      bench::jobs_from_env());

  for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
    const auto& c = cases[ci];
    util::RunningStats rmse, bias, omean;
    for (int r = 0; r < runs; ++r) {
      const auto& e = errors[ci * static_cast<std::size_t>(runs) +
                             static_cast<std::size_t>(r)];
      rmse.add(e.rmse);
      bias.add(e.bias);
      omean.add(e.oracle_mean);
    }
    t.row({c.label, util::TextTable::num(omean.mean(), 2),
           util::TextTable::num(rmse.mean(), 3),
           util::TextTable::num(bias.mean(), 3)});
    csv.push_back({c.label, util::TextTable::num(omean.mean(), 3),
                   util::TextTable::num(rmse.mean(), 4),
                   util::TextTable::num(bias.mean(), 4)});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nreading: the estimate tracks the oracle within a few points of\n"
      "utilization for connection-grained reporting; the error grows with\n"
      "connection length (long transfers report only at completion) —\n"
      "exactly the Remy-Phi practical-vs-ideal gap of Table 3. The last\n"
      "row applies the paper's remedy (§2.2.2: long connections report\n"
      "mid-stream) and recovers most of the accuracy.\n"
      "(%.1f s)\n",
      timer.seconds());
  bench::write_csv("ablation_staleness.csv",
                   {"workload", "oracle_u", "rmse", "bias"}, csv);
  bench::dump_metrics("ablation_staleness");
  return 0;
}
