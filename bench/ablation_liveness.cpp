// ablation_liveness — what do the liveness leases and idempotent reports
// actually buy? The context server's n (competing senders) is built from
// lookup/report pairs; at production scale some senders crash between the
// two, and some reports arrive twice (client retries). This ablation
// drives the dumbbell scenario through a FaultInjector and measures (a)
// how far the server's open-connection count drifts from ground truth as
// the crash rate rises, with leases off vs on, and (b) how much duplicate
// reports inflate the utilization estimate with the dedup set off vs on.
#include <cmath>
#include <cstdio>
#include <iterator>
#include <memory>

#include "bench_common.hpp"
#include "exec/pool.hpp"
#include "phi/fault_injection.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 23;

core::ScenarioConfig base_scenario(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 8;
  cfg.workload.mean_on_bytes = 60e3;
  cfg.workload.mean_off_s = 0.4;
  cfg.duration = util::seconds(90);
  cfg.seed = seed;
  return cfg;
}

/// Mean |server active-connection count - live ground truth| sampled over
/// the last 30 s of a 90 s run with crashes active throughout. Legacy
/// (lease=0) accumulates one zombie per crash; leased stays bounded.
double crash_gap(double crash_rate, util::Duration lease, std::uint64_t seed,
                 std::uint64_t* crashes_out) {
  const core::ScenarioConfig cfg = base_scenario(seed);
  core::ContextServerConfig scfg;
  scfg.lease = lease;
  std::unique_ptr<core::ContextServer> server;
  std::unique_ptr<core::FaultInjector> inj;
  util::RunningStats gap;
  std::function<void()> probe;  // outlives the run, no shared_ptr cycle

  (void)core::run_scenario_with_setup(
      cfg, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.dumbbell->scheduler();
        server = std::make_unique<core::ContextServer>(
            scfg, [sched] { return sched->now(); });
        server->set_path_capacity(kPath,
                                  live.dumbbell->config().bottleneck_rate);
        core::FaultConfig fc;
        fc.crash = crash_rate;
        // Fault-arrival stream derived from (not correlated with) the
        // workload seed.
        fc.seed = util::derive_seed(seed, 1);
        inj = std::make_unique<core::FaultInjector>(*sched, *server, fc);

        core::LiveScenario* lv = &live;  // alive for the whole run
        probe = [&, sched, lv] {
          const double truth = lv->active_count();
          const double est =
              static_cast<double>(server->active_connections(kPath));
          gap.add(std::abs(est - truth));
          if (sched->now() < util::seconds(89))
            sched->schedule_in(util::seconds(1), [&probe] { probe(); });
        };
        sched->schedule_at(util::seconds(60), [&probe] { probe(); });

        return [&](std::size_t i) {
          return std::make_unique<core::FaultyPhiAdvisor>(*inj, kPath, i);
        };
      });
  if (crashes_out != nullptr) *crashes_out = inj->crashes();
  return gap.mean();
}

/// Mean utilization estimate under duplicated reports; dedup_capacity = 0
/// disables the recently-seen set, so every retry is absorbed twice.
double dup_utilization(double dup_rate, std::size_t dedup_capacity,
                       std::uint64_t seed) {
  const core::ScenarioConfig cfg = base_scenario(seed);
  core::ContextServerConfig scfg;
  scfg.dedup_capacity = dedup_capacity;
  std::unique_ptr<core::ContextServer> server;
  std::unique_ptr<core::FaultInjector> inj;
  util::RunningStats u;
  std::function<void()> probe;  // outlives the run, no shared_ptr cycle

  (void)core::run_scenario_with_setup(
      cfg, [](std::size_t) { return std::make_unique<tcp::Cubic>(); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.dumbbell->scheduler();
        server = std::make_unique<core::ContextServer>(
            scfg, [sched] { return sched->now(); });
        server->set_path_capacity(kPath,
                                  live.dumbbell->config().bottleneck_rate);
        core::FaultConfig fc;
        fc.duplicate_report = dup_rate;
        fc.seed = util::derive_seed(seed, 1);
        inj = std::make_unique<core::FaultInjector>(*sched, *server, fc);

        probe = [&, sched] {
          u.add(server->context(kPath).utilization);
          if (sched->now() < util::seconds(89))
            sched->schedule_in(util::seconds(1), [&probe] { probe(); });
        };
        sched->schedule_at(util::seconds(10), [&probe] { probe(); });

        return [&](std::size_t i) {
          return std::make_unique<core::FaultyPhiAdvisor>(*inj, kPath, i);
        };
      });
  return u.mean();
}

}  // namespace

int main() {
  bench::banner("Ablation: liveness leases and idempotent reports");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 3 : 2;
  bench::WallTimer timer;

  // (a) competing-senders drift vs crash rate.
  const double crash_rates[] = {0.005, 0.01, 0.02, 0.05};
  bench::ResultTable ta(
      "ablation_liveness_crash.csv",
      {"Crash rate", "Crashes", "Gap (no lease)", "Gap (lease 20 s)"},
      {"crash_rate", "crashes", "gap_no_lease", "gap_lease"});
  // One task per (crash rate, repetition); each runs the no-lease and
  // leased variants back to back on the same seed (paired comparison).
  struct CrashJob {
    std::size_t rate_idx;
    int rep;
  };
  struct CrashOut {
    double legacy = 0;
    double leased = 0;
    std::uint64_t crashes = 0;
  };
  std::vector<CrashJob> crash_batch;
  for (std::size_t i = 0; i < std::size(crash_rates); ++i)
    for (int r = 0; r < runs; ++r) crash_batch.push_back(CrashJob{i, r});
  const auto crash_outs = exec::parallel_map(
      crash_batch,
      [&](const CrashJob& j) {
        const std::uint64_t seed =
            util::derive_seed(1800, static_cast<std::uint64_t>(j.rep));
        CrashOut out;
        out.legacy =
            crash_gap(crash_rates[j.rate_idx], 0, seed, &out.crashes);
        out.leased = crash_gap(crash_rates[j.rate_idx], util::seconds(20),
                               seed, nullptr);
        return out;
      },
      bench::jobs_from_env());

  for (std::size_t ri = 0; ri < std::size(crash_rates); ++ri) {
    const double rate = crash_rates[ri];
    util::RunningStats legacy, leased, crashes;
    for (int r = 0; r < runs; ++r) {
      const auto& out = crash_outs[ri * static_cast<std::size_t>(runs) +
                                   static_cast<std::size_t>(r)];
      legacy.add(out.legacy);
      crashes.add(static_cast<double>(out.crashes));
      leased.add(out.leased);
    }
    ta.row({util::TextTable::num(rate * 100, 1) + " %",
            util::TextTable::num(crashes.mean(), 0),
            util::TextTable::num(legacy.mean(), 2),
            util::TextTable::num(leased.mean(), 2)},
           {util::TextTable::num(rate, 3),
            util::TextTable::num(crashes.mean(), 1),
            util::TextTable::num(legacy.mean(), 3),
            util::TextTable::num(leased.mean(), 3)});
  }
  ta.print_and_dump();

  // (b) utilization inflation vs duplicate rate.
  const double dup_rates[] = {0.0, 0.1, 0.5};
  bench::ResultTable tb(
      "ablation_liveness_dup.csv",
      {"Duplicate rate", "Mean u (dedup on)", "Mean u (dedup off)"},
      {"dup_rate", "u_dedup", "u_no_dedup"});
  struct DupJob {
    std::size_t rate_idx;
    int rep;
  };
  struct DupOut {
    double with_dedup = 0;
    double without = 0;
  };
  std::vector<DupJob> dup_batch;
  for (std::size_t i = 0; i < std::size(dup_rates); ++i)
    for (int r = 0; r < runs; ++r) dup_batch.push_back(DupJob{i, r});
  const auto dup_outs = exec::parallel_map(
      dup_batch,
      [&](const DupJob& j) {
        const std::uint64_t seed =
            util::derive_seed(1900, static_cast<std::uint64_t>(j.rep));
        DupOut out;
        out.with_dedup = dup_utilization(dup_rates[j.rate_idx], 4096, seed);
        out.without = dup_utilization(dup_rates[j.rate_idx], 0, seed);
        return out;
      },
      bench::jobs_from_env());

  for (std::size_t ri = 0; ri < std::size(dup_rates); ++ri) {
    const double rate = dup_rates[ri];
    util::RunningStats with_dedup, without;
    for (int r = 0; r < runs; ++r) {
      const auto& out = dup_outs[ri * static_cast<std::size_t>(runs) +
                                 static_cast<std::size_t>(r)];
      with_dedup.add(out.with_dedup);
      without.add(out.without);
    }
    tb.row({util::TextTable::num(rate * 100, 0) + " %",
            util::TextTable::num(with_dedup.mean(), 3),
            util::TextTable::num(without.mean(), 3)},
           {util::TextTable::num(rate, 2),
            util::TextTable::num(with_dedup.mean(), 4),
            util::TextTable::num(without.mean(), 4)});
  }
  tb.print_and_dump();
  std::printf(
      "\nreading: without leases the open-connection count inflates by\n"
      "roughly one per crash and never recovers, so n (and every estimate\n"
      "derived from it) drifts with uptime; a 20 s lease bounds the gap to\n"
      "the crashes of the last lease window. Duplicated reports double-\n"
      "count delivered bytes and inflate u in step with the retry rate;\n"
      "the report-id dedup set holds u at the clean value.\n"
      "(%.1f s)\n",
      timer.seconds());
  bench::dump_metrics("ablation_liveness");
  return 0;
}
