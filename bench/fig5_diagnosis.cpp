// fig5_diagnosis — reproduces Figure 5: a time-series model of request
// volume, sliced by client AS and metro, detects an unreachability event
// and localizes it to one ISP network in one metro for ~2 hours.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/detector.hpp"
#include "diag/generator.hpp"
#include "util/table.hpp"

using namespace phi;

int main() {
  bench::banner("Figure 5: unreachability detection & localization");
  const bench::Scale scale = bench::scale_from_env();

  diag::RequestGenerator::Config gen_cfg;
  gen_cfg.n_as = 8;
  gen_cfg.n_metros = 6;
  diag::RequestGenerator gen(gen_cfg);

  // The Figure-5 scenario: one ISP x metro loses ~90% of its traffic for
  // about two hours.
  diag::InjectedEvent ev;
  ev.as = 3;
  ev.metro = 2;
  ev.start_minute = 14 * 1440 + 9 * 60;  // day 15, 09:00
  ev.duration_minutes = 120;
  ev.severity = 0.9;
  gen.add_event(ev);

  diag::UnreachabilityDetector::Config det_cfg;
  diag::UnreachabilityDetector det(det_cfg);

  // Train on clean history, then serve a day that contains the event.
  const int train_days = scale == bench::Scale::kFull ? 14 : 7;
  const int train_start = (14 - train_days) * 1440;
  bench::WallTimer timer;
  for (int m = train_start; m < 14 * 1440; ++m)
    det.train(m, gen.minute_counts(m, /*with_events=*/false));

  std::vector<std::vector<std::string>> series;
  const diag::SliceKey affected{ev.as, ev.metro};
  for (int m = 14 * 1440; m < 15 * 1440; ++m) {
    const auto counts = gen.minute_counts(m);
    det.observe(m, counts);
    // Record the affected slice's actual-vs-expected series around the
    // event (the Fig. 5 plot).
    if (m >= ev.start_minute - 120 && m <= ev.end_minute() + 120) {
      double actual = 0;
      for (const auto& [key, v] : counts)
        if (key.first == ev.as && key.second == ev.metro) actual += v;
      series.push_back({std::to_string(m - ev.start_minute),
                        util::TextTable::num(actual, 1),
                        util::TextTable::num(det.expected(affected, m), 1)});
    }
  }

  std::printf("\ninjected: slice (as%d, metro%d), start day-15 09:00, "
              "duration %d min, severity %.0f%%\n",
              ev.as, ev.metro, ev.duration_minutes, ev.severity * 100.0);

  util::TextTable t;
  t.header({"Detected slice", "Start offset (min)", "Duration (min)",
            "Min z-score", "Deficit (requests)"});
  for (const auto& d : det.events()) {
    t.row({d.slice.str(),
           std::to_string(d.start_minute - ev.start_minute),
           d.open ? "(open)" : std::to_string(d.duration_minutes()),
           util::TextTable::num(d.min_zscore, 1),
           util::TextTable::num(d.deficit, 0)});
  }
  std::printf("\n%s", t.str().c_str());

  // Match detections against the injection; short benign blips elsewhere
  // are false positives (reported, not fatal — ops systems page on the
  // sustained, localized event).
  const diag::DetectedEvent* match = nullptr;
  int false_positives = 0;
  for (const auto& d : det.events()) {
    const bool overlaps = d.start_minute <= ev.end_minute() &&
                          (d.open || d.end_minute >= ev.start_minute);
    if (overlaps && d.slice.as == ev.as && d.slice.metro == ev.metro) {
      match = &d;
    } else {
      ++false_positives;
    }
  }
  std::printf("\nclaim check: injected event %s", match ? "DETECTED" : "MISSED");
  if (match != nullptr) {
    std::printf(" (start offset %+d min, measured duration %s min, "
                "localized to %s)",
                match->start_minute - ev.start_minute,
                match->open ? "open"
                            : std::to_string(match->duration_minutes()).c_str(),
                match->slice.str().c_str());
  }
  std::printf("; %d short false positives elsewhere   (%.1f s)\n",
              false_positives, timer.seconds());

  bench::write_csv("fig5_series.csv",
                   {"minute_vs_event_start", "actual", "expected"}, series);
  bench::dump_metrics("fig5_diagnosis");
  return match == nullptr ? 1 : 0;
}
