// ablation_fq — §3.1's root cause, tested directly: "the prevalence of
// FIFO queuing means that a flow is not insulated from the actions of
// other flows... FIFO queuing is not incentives-compatible." Re-runs the
// Figure-4 mixed deployment (half tuned, half default) under drop-tail
// FIFO and under per-flow DRR fair queueing. Under FQ each flow is
// isolated, so (a) unmodified blasters can no longer damage modified
// senders, and (b) much of the *coordination* motive disappears — tuning
// becomes a private good. Exactly the paper's argument for why today's
// FIFO Internet needs Phi.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioConfig workload(sim::DumbbellConfig::Queue queue,
                              std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 8;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.net.queue = queue;
  cfg.workload.mean_on_bytes = 500e3;
  cfg.workload.mean_off_s = 2.0;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;
  return cfg;
}

struct MixedOutcome {
  double modified_tput = 0;
  double unmodified_tput = 0;
  double modified_rtt = 0;
  double unmodified_rtt = 0;
};

MixedOutcome run_mixed(sim::DumbbellConfig::Queue queue,
                       std::uint64_t seed) {
  const tcp::CubicParams tuned{64, 32, 0.2};  // the Fig.-4 optimum
  const auto m = core::run_scenario(
      workload(queue, seed),
      [tuned](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
        return std::make_unique<tcp::Cubic>(i % 2 == 0 ? tuned
                                                       : tcp::CubicParams{});
      },
      nullptr, [](std::size_t i) { return static_cast<int>(i % 2); });
  MixedOutcome out;
  for (const auto& g : m.groups) {
    if (g.group == 0) {
      out.modified_tput = g.throughput_bps;
      out.modified_rtt = g.mean_rtt_s;
    } else {
      out.unmodified_tput = g.throughput_bps;
      out.unmodified_rtt = g.mean_rtt_s;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.1): mixed deployment under FIFO vs fair queueing");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 8 : 4;

  util::TextTable t;
  t.header({"Queue", "Group", "Tput (Mbps)", "Mean RTT (ms)",
            "Power (M)"});
  std::vector<std::vector<std::string>> csv;
  bench::WallTimer timer;
  double fifo_gap = 0, fq_gap = 0;
  for (const auto queue : {sim::DumbbellConfig::Queue::kDropTail,
                           sim::DumbbellConfig::Queue::kFq}) {
    const char* qname =
        queue == sim::DumbbellConfig::Queue::kFq ? "DRR fair queueing"
                                                 : "drop-tail FIFO";
    util::RunningStats mt, ut, mr, ur;
    for (int r = 0; r < runs; ++r) {
      const auto o = run_mixed(queue, util::derive_seed(1600, static_cast<std::uint64_t>(r)));
      mt.add(o.modified_tput);
      ut.add(o.unmodified_tput);
      mr.add(o.modified_rtt);
      ur.add(o.unmodified_rtt);
    }
    auto row = [&](const char* group, const util::RunningStats& tput,
                   const util::RunningStats& rtt) {
      const double power =
          rtt.mean() > 0 ? tput.mean() / rtt.mean() : 0.0;
      t.row({qname, group, util::TextTable::num(tput.mean() / 1e6, 2),
             util::TextTable::num(rtt.mean() * 1e3, 1),
             util::TextTable::num(power / 1e6, 2)});
      csv.push_back({qname, group, util::TextTable::num(tput.mean(), 0),
                     util::TextTable::num(rtt.mean() * 1e3, 2)});
    };
    row("modified (tuned)", mt, mr);
    row("unmodified (default)", ut, ur);
    const double gap = mt.mean() - ut.mean();
    if (queue == sim::DumbbellConfig::Queue::kFq) {
      fq_gap = gap;
    } else {
      fifo_gap = gap;
    }
  }
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nreading: FIFO couples the groups (the unmodified half's slow-start\n"
      "bursts inflate everyone's RTT; the tuned half's restraint leaks to\n"
      "free riders). Under DRR each flow is insulated, so tuning is a\n"
      "private good and the case for fleet-wide *coordination* (vs mere\n"
      "per-sender tuning) weakens — the paper's §3.1 incentive argument.\n"
      "tuned-vs-default throughput gap: FIFO %.2f Mbps, FQ %.2f Mbps.\n"
      "(%.1f s)\n",
      fifo_gap / 1e6, fq_gap / 1e6, timer.seconds());
  bench::write_csv("ablation_fq.csv",
                   {"queue", "group", "tput_bps", "rtt_ms"}, csv);
  bench::dump_metrics("ablation_fq");
  return 0;
}
