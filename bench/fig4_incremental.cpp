// fig4_incremental — reproduces Figure 4: incremental deployment. Half the
// senders ("modified") adopt the parameter setting that would have been
// optimal under full cooperation; the other half ("unmodified") keep the
// defaults. The paper's findings to reproduce: modified senders still see
// better throughput and delay; even unmodified senders improve on the
// power metric, though their queueing delay can be slightly worse; the
// advantage shrinks as utilization rises.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/presets.hpp"
#include "phi/sweep.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioSpec workload(std::size_t pairs, std::uint64_t seed) {
  core::ScenarioSpec cfg = core::presets::paper_dumbbell(pairs);
  cfg.seed = seed;
  return cfg;
}

struct MixedResult {
  core::GroupMetrics modified;
  core::GroupMetrics unmodified;
  core::ScenarioMetrics all;
};

MixedResult run_mixed(const core::ScenarioSpec& cfg,
                      tcp::CubicParams tuned) {
  // Even sender indices are modified, odd keep defaults.
  auto metrics = core::run_scenario(
      cfg,
      [tuned](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
        return std::make_unique<tcp::Cubic>(i % 2 == 0 ? tuned
                                                       : tcp::CubicParams{});
      },
      nullptr, [](std::size_t i) { return static_cast<int>(i % 2); });
  MixedResult out;
  out.all = metrics;
  for (const auto& g : metrics.groups) {
    if (g.group == 0) out.modified = g;
    if (g.group == 1) out.unmodified = g;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 4: incremental deployment (half modified)");
  const bench::Scale scale = bench::scale_from_env();
  const int runs = scale == bench::Scale::kFull ? 8 : 4;
  const core::SweepSpec grid = scale == bench::Scale::kFull
                                   ? core::SweepSpec::paper()
                                   : core::SweepSpec::coarse();

  // The paper's Fig. 4 operates around 60% utilization ("the moderate
  // link utilization (60%) means that modified flows sometimes get lucky
  // in not encountering any unmodified flows"); 8 senders of this
  // workload land there. First find the full-cooperation optimum.
  const std::size_t pairs = 8;
  bench::WallTimer timer;
  const core::SweepResult sweep =
      core::run_cubic_sweep(workload(pairs, 31), grid, runs);
  const tcp::CubicParams tuned = sweep.best().params;
  std::printf("full-cooperation optimum at ~%.0f%% utilization: %s  (%.1f s)\n",
              sweep.best().mean.utilization * 100.0, tuned.str().c_str(),
              timer.seconds());

  // Baseline: everyone default. Mixed: half modified.
  util::RunningStats base_tput, base_rtt, base_rtx;
  util::RunningStats mod_tput, mod_rtt, mod_rtx;
  util::RunningStats unmod_tput, unmod_rtt, unmod_rtx;
  util::RunningStats mixed_qdelay, base_qdelay;
  for (int r = 0; r < runs; ++r) {
    const auto cfg = workload(pairs, util::derive_seed(400, static_cast<std::uint64_t>(r)));
    const MixedResult mixed = run_mixed(cfg, tuned);
    const auto base = core::run_cubic_scenario(cfg, tcp::CubicParams{});

    base_tput.add(base.throughput_bps);
    base_rtt.add(base.mean_rtt_s);
    base_qdelay.add(base.mean_queue_delay_s);
    mixed_qdelay.add(mixed.all.mean_queue_delay_s);
    mod_tput.add(mixed.modified.throughput_bps);
    mod_rtt.add(mixed.modified.mean_rtt_s);
    mod_rtx.add(mixed.modified.retransmit_rate);
    unmod_tput.add(mixed.unmodified.throughput_bps);
    unmod_rtt.add(mixed.unmodified.mean_rtt_s);
    unmod_rtx.add(mixed.unmodified.retransmit_rate);
  }

  auto power = [](double tput, double rtt) {
    return rtt > 0 ? tput / rtt : 0.0;
  };

  util::TextTable t;
  t.header({"Group", "Tput (Mbps)", "Mean RTT (ms)", "Rtx rate",
            "Power (M)"});
  t.row({"all-default (baseline)",
         util::TextTable::num(base_tput.mean() / 1e6, 2),
         util::TextTable::num(base_rtt.mean() * 1e3, 1), "-",
         util::TextTable::num(power(base_tput.mean(), base_rtt.mean()) / 1e6,
                              2)});
  t.row({"modified half", util::TextTable::num(mod_tput.mean() / 1e6, 2),
         util::TextTable::num(mod_rtt.mean() * 1e3, 1),
         util::TextTable::pct(mod_rtx.mean(), 2),
         util::TextTable::num(power(mod_tput.mean(), mod_rtt.mean()) / 1e6,
                              2)});
  t.row({"unmodified half", util::TextTable::num(unmod_tput.mean() / 1e6, 2),
         util::TextTable::num(unmod_rtt.mean() * 1e3, 1),
         util::TextTable::pct(unmod_rtx.mean(), 2),
         util::TextTable::num(
             power(unmod_tput.mean(), unmod_rtt.mean()) / 1e6, 2)});
  std::printf("\n%s", t.str().c_str());
  std::printf("bottleneck queueing delay: all-default %.1f ms -> mixed %.1f ms\n",
              base_qdelay.mean() * 1e3, mixed_qdelay.mean() * 1e3);

  bench::write_csv(
      "fig4.csv", {"group", "tput_bps", "rtt_ms", "rtx_rate"},
      {{"all-default", util::TextTable::num(base_tput.mean(), 0),
        util::TextTable::num(base_rtt.mean() * 1e3, 2), "-"},
       {"modified", util::TextTable::num(mod_tput.mean(), 0),
        util::TextTable::num(mod_rtt.mean() * 1e3, 2),
        util::TextTable::num(mod_rtx.mean(), 4)},
       {"unmodified", util::TextTable::num(unmod_tput.mean(), 0),
        util::TextTable::num(unmod_rtt.mean() * 1e3, 2),
        util::TextTable::num(unmod_rtx.mean(), 4)}});
  bench::dump_metrics("fig4_incremental");
  return 0;
}
