// micro_components — google-benchmark microbenchmarks of the hot
// components: event scheduling, queue operations, congestion-control
// updates, whisker-tree lookups, context-server round trips, IPFIX
// sampling, and an end-to-end mini scenario.
#include <benchmark/benchmark.h>

#include <array>
#include <limits>
#include <memory>
#include <string>

#include "flow/bottleneck.hpp"
#include "flow/heavy_hitters.hpp"
#include "flow/ipfix.hpp"
#include "phi/context_server.hpp"
#include "phi/scenario.hpp"
#include "phi/secure_agg.hpp"
#include "remy/remycc.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"
#include "sim/parking_lot.hpp"
#include "sim/queue.hpp"
#include "sim/queue_disc.hpp"
#include "tcp/cc.hpp"
#include "tcp/sender.hpp"
#include "tcp/sink.hpp"
#include "util/rng.hpp"

using namespace phi;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    long executed = 0;
    for (int i = 0; i < state.range(0); ++i)
      s.schedule_at(i * 100, [&executed] { ++executed; });
    s.run_until(state.range(0) * 100);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000);

// The retransmit-timer pattern: every "ack" cancels the pending timer and
// re-arms it. This is the scheduler's allocation-sensitive path — with
// slot recycling and SmallFn inline captures, steady state allocates
// nothing. items_per_second here is events/sec (one schedule + one cancel
// per item).
void BM_SchedulerTimerChurn(benchmark::State& state) {
  sim::Scheduler s;
  util::Time now = 0;
  long fired = 0;
  sim::EventId pending = 0;
  for (auto _ : state) {
    if (pending != 0) s.cancel(pending);
    now += 1000;
    pending = s.schedule_at(now + 250'000'000, [&fired] { ++fired; });
    benchmark::DoNotOptimize(pending);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("events/sec");
}
BENCHMARK(BM_SchedulerTimerChurn);

// Self-rescheduling event chain (the cbr/monitor pattern): measures
// steady-state dispatch throughput, heap push/pop plus one SmallFn
// invocation per event, with the slot slab warm.
void BM_SchedulerSelfReschedule(benchmark::State& state) {
  sim::Scheduler s;
  const long n = state.range(0);
  struct Chain {
    sim::Scheduler& s;
    long left;
    void arm() {
      s.schedule_in(1000, [this] {
        if (--left > 0) arm();
      });
    }
  };
  for (auto _ : state) {
    Chain chain{s, n};
    chain.arm();
    s.run_until(s.now() + n * 1000 + 1);
    benchmark::DoNotOptimize(chain.left);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("events/sec");
}
BENCHMARK(BM_SchedulerSelfReschedule)->Arg(10000);

// Same-deadline storm: many events sharing one exact timestamp, the
// shape run_until's burst dequeue is built for (a synchronized window of
// deliveries landing together). The wheel collects the whole bucket in
// one sweep; the old heap paid a log-n pop per event.
void BM_SchedulerSameDeadlineStorm(benchmark::State& state) {
  const long n = state.range(0);
  for (auto _ : state) {
    sim::Scheduler s;
    long executed = 0;
    for (long i = 0; i < n; ++i)
      s.schedule_at(10'000, [&executed] { ++executed; });
    s.run_until(20'000);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("events/sec");
}
BENCHMARK(BM_SchedulerSameDeadlineStorm)->Arg(64)->Arg(1024);

// Far-future timer churn across wheel levels: re-armed deadlines spread
// over seconds land on upper wheel levels or the overflow heap, then
// cascade down as time advances. Exercises placement, cascade, and
// overflow migration together — the costs a near-future-only bench
// never sees.
void BM_SchedulerCrossLevelChurn(benchmark::State& state) {
  sim::Scheduler s;
  util::Rng rng(0xC0DE);
  long fired = 0;
  // Keep a working set of timers spanning ~4 s (level 2 / overflow
  // territory at 1.024 us ticks), advancing time in 1 ms steps.
  constexpr int kTimers = 256;
  std::array<sim::EventId, kTimers> ids{};
  for (auto _ : state) {
    const int slot = static_cast<int>(rng.below(kTimers));
    if (ids[static_cast<std::size_t>(slot)] != 0)
      s.cancel(ids[static_cast<std::size_t>(slot)]);
    const util::Time t =
        s.now() + 1'000'000 +
        static_cast<util::Time>(rng.below(4'000'000'000ull));
    ids[static_cast<std::size_t>(slot)] =
        s.schedule_at(t, [&fired] { ++fired; });
    s.run_until(s.now() + 1'000'000);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("rearm+advance/sec");
}
BENCHMARK(BM_SchedulerCrossLevelChurn);

void BM_DropTailQueue(benchmark::State& state) {
  sim::PacketPool pool;
  sim::DropTailQueue q(1500 * 64);
  const sim::PacketHandle h = pool.acquire(sim::Packet{});
  for (auto _ : state) {
    q.enqueue(pool, h, 0);
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailQueue);

// The per-packet datapath in isolation: a saturated link serializing
// back-to-back segments into a counting agent. Every packet costs one
// delivery event and one transmit-complete event, so items/sec here is
// the simulator's raw packet-transit throughput (the PR 5 tentpole
// metric, recorded before/after in BENCH_PR5.json).
void BM_LinkPacketTransit(benchmark::State& state) {
  sim::Network net;
  sim::Node& a = net.add_node("a");
  sim::Node& b = net.add_node("b");
  sim::Link& l = net.add_link(a, b, 1.0 * util::kGbps,
                              util::microseconds(10), 64 * 1024 * 1024);
  a.add_route(b.id(), &l);
  struct Count : sim::Agent {
    std::uint64_t n = 0;
    void on_packet(const sim::Packet&) override { ++n; }
  } sink;
  b.attach(1, &sink);
  sim::Packet p;
  p.src = a.id();
  p.dst = b.id();
  p.flow = 1;
  constexpr int kBatch = 512;
  // 512 x 1500 B at 1 Gbps is ~6.1 ms of serialization per batch.
  const util::Duration batch_horizon = util::milliseconds(10);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      p.seq = i;
      a.send(p);
    }
    net.run_until(net.now() + batch_horizon);
  }
  benchmark::DoNotOptimize(sink.n);
  b.detach(1);
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("packets/sec");
}
BENCHMARK(BM_LinkPacketTransit);

// End-to-end packets/sec: a full TCP transfer (Cubic sender, per-packet
// ACKs) over a duplex pair of links, counting every data packet and ACK
// that crossed the network. Exercises the whole per-packet path: send ->
// queue -> serialize -> deliver -> agent -> reverse path.
void BM_EndToEndPacketTransit(benchmark::State& state) {
  sim::Network net;
  sim::Node& a = net.add_node("a");
  sim::Node& b = net.add_node("b");
  auto [fwd, rev] = net.add_duplex(a, b, 100.0 * util::kMbps,
                                   util::milliseconds(1), 1'000'000, "e2e");
  a.add_route(b.id(), fwd);
  b.add_route(a.id(), rev);
  tcp::TcpSender sender(net.scheduler(), a, b.id(), 1,
                        std::make_unique<tcp::Cubic>());
  tcp::TcpSink sink(net.scheduler(), b, 1);
  std::uint64_t packets = 0;
  constexpr std::int64_t kSegments = 2000;
  for (auto _ : state) {
    bool done = false;
    tcp::ConnStats stats;
    sender.start_connection(kSegments, [&](const tcp::ConnStats& s) {
      done = true;
      stats = s;
    });
    while (!done) net.run_until(net.now() + util::seconds(1));
    packets += stats.packets_sent;
  }
  packets += sink.acks_sent();
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.SetLabel("packets/sec");
}
BENCHMARK(BM_EndToEndPacketTransit)->Unit(benchmark::kMillisecond);

// Steady-state sender cost of processing one ACK, with the network
// removed entirely: a routeless node discards every data packet the
// sender emits (counted as no_route_drops), and the loop hand-crafts
// cumulative ACKs straight into the agent. Each ACK exercises the full
// sender path — RTT sampling, cwnd update, retransmit-timer re-arm, and
// the transmit burst the freed window allows. ECN is enabled and every
// ACK carries ECE so cwnd follows a bounded sawtooth (one cut per
// window) instead of growing without limit.
void BM_TcpSenderAckClock(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Node node(0, "ackclock");
  tcp::TcpSender sender(sched, node, /*dst=*/1, /*flow=*/1,
                        std::make_unique<tcp::Cubic>());
  sender.set_ecn(true);
  sender.start_connection(std::numeric_limits<std::int64_t>::max() / 2,
                          [](const tcp::ConnStats&) {});
  sim::Packet ack;
  ack.flow = 1;
  ack.conn = 1;
  ack.is_ack = true;
  ack.ece = true;
  std::int64_t acked = 0;
  for (auto _ : state) {
    // 100µs of simulated time per ACK: enough to fire pacing/timer
    // callbacks without the clock outrunning the retransmit timeout.
    sched.run_until(sched.now() + util::microseconds(100));
    ack.ack = ++acked;
    ack.echo = sched.now() > util::milliseconds(100)
                   ? sched.now() - util::milliseconds(100)
                   : 0;
    sender.on_packet(ack);
  }
  benchmark::DoNotOptimize(node.no_route_drops());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("acks/sec");
}
BENCHMARK(BM_TcpSenderAckClock);

// A window policy with the congestion dynamics removed: the scoreboard
// benches hold the in-flight window at a realistic fleet-path size so
// items/sec isolates loss-recovery bookkeeping, not Cubic's sawtooth.
class FixedWindowCc final : public tcp::CongestionControl {
 public:
  explicit FixedWindowCc(double w) : w_(w) {}
  void reset(util::Time) override {}
  void on_ack(std::int64_t, double, util::Time) override {}
  void on_loss_event(util::Time, std::int64_t) override {}
  void on_timeout(util::Time, std::int64_t) override {}
  double window() const override { return w_; }
  double ssthresh() const override { return w_; }
  std::string name() const override { return "fixed"; }

 private:
  double w_;
};

// The lossy counterpart of BM_TcpSenderAckClock: SACK is on and the ACK
// stream replays a recurring loss episode — every 8th segment of a
// ~512-segment in-flight window is "lost", the rest arrive and are
// SACKed in rotating 3-block dup-ACKs (RFC 2018 style), then a
// cumulative ACK closes the episode. Each dup-ACK drives absorb_sack +
// the try_send_sack loop (sack_pipe / next_hole per released segment),
// which is exactly the per-ACK scoreboard cost that dominates
// loss-recovery-heavy fleet runs.
void BM_TcpSenderSackRecovery(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Node node(0, "sackclock");
  tcp::TcpSender sender(sched, node, /*dst=*/1, /*flow=*/1,
                        std::make_unique<FixedWindowCc>(600));
  sender.set_sack(true);
  sender.start_connection(std::numeric_limits<std::int64_t>::max() / 2,
                          [](const tcp::ConnStats&) {});
  sim::Packet ack;
  ack.flow = 1;
  ack.conn = 1;
  ack.is_ack = true;
  std::int64_t una = 0;
  // Rotating cursor over the episode's SACKed runs; persists across
  // episodes so successive dup-ACKs report successive runs, like a real
  // sink walking through the arrival sequence.
  std::int64_t run_cursor = 0;
  const auto feed = [&](std::int64_t cum, int blocks,
                        std::int64_t lo, std::int64_t hi) {
    sched.run_until(sched.now() + util::microseconds(100));
    ack.ack = cum;
    ack.echo = sched.now() > util::milliseconds(100)
                   ? sched.now() - util::milliseconds(100)
                   : 0;
    ack.sack_count = 0;
    for (int b = 0; b < blocks; ++b) {
      // Runs of 7 arrived segments between lost every-8th holes.
      const std::int64_t base =
          lo + ((run_cursor + b) % ((hi - lo) / 8)) * 8;
      ack.sack[ack.sack_count++] = {base + 1, base + 8};
    }
    if (blocks > 0) ++run_cursor;
    sender.on_packet(ack);
  };
  for (auto _ : state) {
    const std::int64_t inflight = sender.segments_in_flight();
    if (inflight < 512) {
      // Refill the fixed window with clean cumulative ACKs (each releases
      // a burst of new data) until the next episode is worth staging.
      feed(++una, 0, 0, 0);
      continue;
    }
    // Loss episode over [una, una+span): every 8th segment lost.
    const std::int64_t span = (inflight / 8) * 8;
    feed(una, 3, una, una + span);
    if (run_cursor % (span / 8) == 0) {
      // Holes retransmitted and delivered: a cumulative ACK closes the
      // episode and the next one stages on fresh data.
      una += span;
      feed(una, 0, 0, 0);
    }
  }
  benchmark::DoNotOptimize(node.no_route_drops());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("acks/sec");
}
BENCHMARK(BM_TcpSenderSackRecovery);

// Sink-side scoreboard cost: deliver a window with every 8th segment
// missing, then fill the holes. Every arrival makes the sink rebuild its
// out-of-order view and emit an ACK carrying up to 3 SACK blocks, so
// items/sec measures the per-packet cost of SACK-block generation with a
// scoreboard full of holes.
void BM_TcpSinkSackAcks(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Node node(0, "sinksack");
  tcp::TcpSink sink(sched, node, /*flow=*/1);
  sink.set_sack(true);
  sim::Packet p;
  p.src = 1;
  p.dst = 0;
  p.flow = 1;
  p.conn = 1;
  constexpr std::int64_t kWindow = 512;
  std::int64_t base = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    // First pass: holes at every 8th seq -> 64 runs on the scoreboard.
    for (std::int64_t s = base; s < base + kWindow; ++s) {
      if ((s - base) % 8 == 0) continue;
      p.seq = s;
      sink.on_packet(p);
      ++delivered;
    }
    // Second pass: fill the holes (each fill collapses a run).
    for (std::int64_t s = base; s < base + kWindow; s += 8) {
      p.seq = s;
      sink.on_packet(p);
      ++delivered;
    }
    base += kWindow;
  }
  benchmark::DoNotOptimize(sink.acks_sent());
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets/sec");
}
BENCHMARK(BM_TcpSinkSackAcks);

void BM_CubicOnAck(benchmark::State& state) {
  tcp::Cubic cc;
  cc.reset(0);
  util::Time now = 0;
  for (auto _ : state) {
    now += 1000000;
    cc.on_ack(1, 0.15, now);
    benchmark::DoNotOptimize(cc.window());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CubicOnAck);

void BM_WhiskerLookup(benchmark::State& state) {
  remy::WhiskerTree tree({}, 0b1111);
  for (int i = 0; i < 4; ++i) tree.split(tree.size() / 2);  // ~64 whiskers
  remy::SignalVector v{12.0, 15.0, 1.7, 0.4};
  util::Rng rng(1);
  for (auto _ : state) {
    v[0] = rng.uniform(0, 100);
    benchmark::DoNotOptimize(tree.find(v));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(tree.size()) + " whiskers");
}
BENCHMARK(BM_WhiskerLookup);

void BM_ContextServerRoundTrip(benchmark::State& state) {
  core::ContextServer server;
  server.set_path_capacity(1, 15e6);
  util::Time now = 0;
  std::uint64_t sender = 0;
  for (auto _ : state) {
    now += util::kMillisecond;
    const auto reply =
        server.lookup(core::LookupRequest{1, sender, now});
    benchmark::DoNotOptimize(reply);
    core::Report r;
    r.path = 1;
    r.sender_id = sender;
    r.started = now;
    r.ended = now + util::kSecond;
    r.bytes = 100000;
    r.min_rtt_s = 0.15;
    r.mean_rtt_s = 0.18;
    server.report(r);
    sender = (sender + 1) % 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContextServerRoundTrip);

void BM_IpfixSampling(benchmark::State& state) {
  flow::PacketSampler sampler(4096);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.observe(1 + rng.below(100)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpfixSampling);

void BM_RedQueueEnqueue(benchmark::State& state) {
  sim::PacketPool pool;
  sim::RedQueue::Config cfg;
  cfg.capacity_bytes = 64 * sim::kSegmentBytes;
  sim::RedQueue q(cfg);
  sim::Packet p;
  p.ect = true;
  util::Time now = 0;
  for (auto _ : state) {
    const sim::PacketHandle h = pool.acquire(p);
    if (!q.enqueue(pool, h, now += 1000)) pool.release(h);
    if (q.packets() > 32) {
      const sim::Queued d = q.dequeue();
      if (d.handle != sim::kNullPacket) pool.release(d.handle);
      benchmark::DoNotOptimize(d.size_bytes);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedQueueEnqueue);

void BM_SecureAggShare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto seeds = core::derive_pairwise_seeds(n, 0xABCD);
  core::SecureParticipant p(0, seeds[0]);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.masked_share(0.5, ++round));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(n) + " participants");
}
BENCHMARK(BM_SecureAggShare)->Arg(4)->Arg(64);

void BM_PearsonCorrelation(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 600; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::pearson(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_PearsonCorrelation);

void BM_SpaceSavingAdd(benchmark::State& state) {
  util::Rng rng(5);
  util::ZipfSampler zipf(100000, 1.1);
  flow::SpaceSaving<std::size_t> ss(1000);
  for (auto _ : state) {
    ss.add(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd);

void BM_MiniScenario(benchmark::State& state) {
  for (auto _ : state) {
    core::ScenarioConfig cfg;
    cfg.net.pairs = 4;
    cfg.workload.mean_on_bytes = 100e3;
    cfg.workload.mean_off_s = 0.5;
    cfg.duration = util::seconds(10);
    benchmark::DoNotOptimize(
        core::run_cubic_scenario(cfg, tcp::CubicParams{}));
  }
}
BENCHMARK(BM_MiniScenario)->Unit(benchmark::kMillisecond);

// The sharding headline: one parking-lot churn scenario run end to end at
// 1/2/4 shards. Items processed = simulator events dispatched, which a
// deterministic sharded run executes in exactly the serial count — so
// items/sec compares engine throughput directly across shard counts.
// On a single-core host this measures sharding overhead (barriers,
// boundary copies) rather than speedup; see BENCH_PR8.json.
void BM_ShardedEndToEndPacketTransit(benchmark::State& state) {
  core::ScenarioSpec spec;
  sim::ParkingLotConfig lot;
  lot.hops = 3;
  lot.cross_per_hop = 2;
  lot.long_flows = 1;
  spec.topology = lot;
  spec.workload.mean_on_bytes = 150e3;
  spec.workload.mean_off_s = 0.5;
  spec.duration = util::seconds(10);
  spec.seed = 7;
  spec.sharding.shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  int shards_used = 0;
  for (auto _ : state) {
    core::ScenarioMetrics m = core::run_cubic_scenario(spec, tcp::CubicParams{});
    events += m.events_executed;
    shards_used = m.shards_used;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/sec @" + std::to_string(shards_used) + " shard(s)");
}
BENCHMARK(BM_ShardedEndToEndPacketTransit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
