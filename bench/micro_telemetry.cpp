// micro_telemetry — cost of the telemetry subsystem, and proof that the
// PHI_TELEMETRY_OFF build compiles it down to nothing.
//
// BM_SchedulerHotPath is the yardstick: build once with telemetry on and
// once with -DPHI_TELEMETRY_OFF=ON, run both, and the OFF number should be
// indistinguishable (±2%) from a pre-telemetry baseline of the same
// scheduler loop — the instrument updates in Scheduler::schedule_at/step
// are empty inline functions in that mode. The remaining benchmarks price
// the ON-mode primitives: a cached-handle counter add is an integer
// increment, a histogram observe is ~a dozen ns (bucket search + three P²
// updates), registry lookups are string-keyed map walks meant for
// construction time only, and a category-masked-out trace instant costs
// one predictable branch.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "sim/event.hpp"
#include "sim/network.hpp"
#include "tcp/cc.hpp"
#include "tcp/sender.hpp"
#include "tcp/sink.hpp"
#include "telemetry/telemetry.hpp"

using namespace phi;

namespace {

#ifdef PHI_TELEMETRY_OFF
constexpr const char* kMode = "telemetry=off";
#else
constexpr const char* kMode = "telemetry=on";
#endif

// The scheduler hot path (schedule + dispatch), instruments included.
// Identical source to micro_components' BM_SchedulerScheduleRun so the
// two binaries (ON vs OFF builds) are directly comparable.
void BM_SchedulerHotPath(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    long executed = 0;
    for (int i = 0; i < state.range(0); ++i)
      s.schedule_at(i * 100, [&executed] { ++executed; });
    s.run_until(state.range(0) * 100);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(kMode);
}
BENCHMARK(BM_SchedulerHotPath)->Arg(1000)->Arg(10000);

void BM_CounterAdd(benchmark::State& state) {
  telemetry::Counter& c =
      telemetry::registry().counter("bench.micro.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::Gauge& g = telemetry::registry().gauge("bench.micro.gauge");
  double v = 0.0;
  for (auto _ : state) {
    g.set(v += 1.0);
    benchmark::DoNotOptimize(&g);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram& h =
      telemetry::registry().histogram("bench.micro.hist");
  double v = 1e-6;
  for (auto _ : state) {
    v = v < 1e3 ? v * 1.37 : 1e-6;  // sweep the bucket range
    h.observe(v);
    benchmark::DoNotOptimize(&h);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_HistogramObserve);

// The cold path components pay once at construction: a string-keyed
// registry lookup. Never do this per event.
void BM_RegistryLookup(benchmark::State& state) {
  auto& reg = telemetry::registry();
  (void)reg.counter("bench.micro.lookup", {{"k", "v"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &reg.counter("bench.micro.lookup", {{"k", "v"}}));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_RegistryLookup);

void BM_TraceInstantEnabled(benchmark::State& state) {
#ifndef PHI_TELEMETRY_OFF
  telemetry::TraceSink sink(telemetry::kAllCategories,
                            /*max_events=*/1 << 20);
  telemetry::set_tracer(&sink);
#endif
  util::Time ts = 0;
  for (auto _ : state) {
    if (auto* t = telemetry::tracer();
        t && t->enabled(telemetry::Category::kBench)) {
      t->instant(telemetry::Category::kBench, "bench.tick", ts += 100,
                 {telemetry::targ("i", 1.0)});
    }
#ifndef PHI_TELEMETRY_OFF
    if (sink.events().size() >= (1u << 20) - 1) sink.clear();
#endif
  }
#ifndef PHI_TELEMETRY_OFF
  telemetry::set_tracer(nullptr);
#endif
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_TraceInstantEnabled);

// Causal-span overhead on the end-to-end packet path: the same TCP
// transfer as micro_components' BM_EndToEndPacketTransit, run three
// ways. spans=off has no SpanLog installed (every per-packet tracing
// site is `p.trace != 0` on an untraced packet after one nullptr-guarded
// lookup at connection start). spans=1in64 installs a log at the default
// sampling rate but uses a flow the sampler skips — the realistic
// steady-state cost for 63 of every 64 flows, required to stay within 2%
// of off. spans=all traces every packet: the worst-case recording cost,
// priced honestly by clearing the log between iterations so capacity
// never turns recording into a cheap drop-counter bump.
void BM_EndToEndPacketTransitSpans(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 off, 1 1-in-64, 2 all
  telemetry::SpanLog log(mode == 2 ? 1u : 64u, /*seed=*/0,
                         /*capacity=*/1 << 18);
  if (mode != 0) telemetry::set_spans(&log);
  std::uint64_t flow = 1;
  if (mode == 1) {
    while (log.trace_of(flow) != 0) ++flow;  // a typical unsampled flow
  }

  sim::Network net;
  sim::Node& a = net.add_node("a");
  sim::Node& b = net.add_node("b");
  auto [fwd, rev] = net.add_duplex(a, b, 100.0 * util::kMbps,
                                   util::milliseconds(1), 1'000'000, "e2e");
  a.add_route(b.id(), fwd);
  b.add_route(a.id(), rev);
  tcp::TcpSender sender(net.scheduler(), a, b.id(), flow,
                        std::make_unique<tcp::Cubic>());
  tcp::TcpSink sink(net.scheduler(), b, flow);
  std::uint64_t packets = 0;
  constexpr std::int64_t kSegments = 2000;
  for (auto _ : state) {
    if (mode == 2) {
      state.PauseTiming();
      log.clear();
      state.ResumeTiming();
    }
    bool done = false;
    tcp::ConnStats stats;
    sender.start_connection(kSegments, [&](const tcp::ConnStats& s) {
      done = true;
      stats = s;
    });
    while (!done) net.run_until(net.now() + util::seconds(1));
    packets += stats.packets_sent;
  }
  telemetry::set_spans(nullptr);
  packets += sink.acks_sent();
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.SetLabel(std::string(kMode) + (mode == 0   ? " spans=off"
                                       : mode == 1 ? " spans=1in64"
                                                   : " spans=all"));
}
BENCHMARK(BM_EndToEndPacketTransitSpans)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// A category the mask filters out: the guard is one load + branch.
void BM_TraceInstantMaskedOut(benchmark::State& state) {
#ifndef PHI_TELEMETRY_OFF
  telemetry::TraceSink sink(telemetry::mask_of(telemetry::Category::kTcp));
  telemetry::set_tracer(&sink);
#endif
  util::Time ts = 0;
  for (auto _ : state) {
    if (auto* t = telemetry::tracer();
        t && t->enabled(telemetry::Category::kBench)) {
      t->instant(telemetry::Category::kBench, "bench.tick", ts += 100);
    }
    benchmark::DoNotOptimize(ts);
  }
#ifndef PHI_TELEMETRY_OFF
  telemetry::set_tracer(nullptr);
#endif
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kMode);
}
BENCHMARK(BM_TraceInstantMaskedOut);

}  // namespace

BENCHMARK_MAIN();
