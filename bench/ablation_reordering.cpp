// ablation_reordering — §3.2 end to end: "the threshold of 3 duplicate
// ACKs typically used to trigger TCP fast retransmission could be
// adjusted if the experience of other connections suggests that
// reordering is prevalent."
//
// A jittery bottleneck reorders packets; with the standard threshold of 3
// dup-ACKs, senders fast-retransmit spuriously and cut their windows for
// no reason. Phase 1 lets a fleet share its experience through a
// DupAckThresholdAdvisor; phase 2 compares fixed threshold 3 against the
// advised threshold on the same workload.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/adaptation.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 3;

core::ScenarioConfig jittery(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 4;  // light load: drops are rare, reordering is not
  cfg.net.bottleneck_rate = 30.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(100);
  cfg.net.bottleneck_jitter = util::milliseconds(12);
  cfg.workload.mean_on_bytes = 400e3;
  cfg.workload.mean_off_s = 1.0;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;
  return cfg;
}

/// Advisor applying a dup-ACK threshold and recording shared experience.
struct ThresholdAdvisor : tcp::ConnectionAdvisor {
  core::DupAckThresholdAdvisor* shared = nullptr;  // may be null (fixed)
  int fixed_threshold = 3;

  void before_connection(tcp::TcpSender& sender) override {
    sender.set_dupack_threshold(
        shared != nullptr ? shared->recommend(kPath) : fixed_threshold);
  }
  void after_connection(const tcp::ConnStats& s,
                        const tcp::TcpSender&) override {
    if (shared == nullptr) return;
    // On this lightly-loaded path real drops are rare; a fast-retransmit
    // episode without a timeout is the signature of reordering.
    const bool spurious = s.loss_events > 0 && s.timeouts == 0;
    shared->record_connection(kPath, spurious);
  }
};

struct RunResult {
  double tput = 0;
  double rtx_rate = 0;
  std::int64_t conns = 0;
};

RunResult run_with(core::DupAckThresholdAdvisor* shared, int fixed,
                   std::uint64_t seed) {
  const auto cfg = jittery(seed);
  const auto m = core::run_scenario(
      cfg,
      [](std::size_t) {
        return std::make_unique<tcp::Cubic>(tcp::CubicParams{64, 8, 0.2});
      },
      [&](std::size_t) {
        auto a = std::make_unique<ThresholdAdvisor>();
        a->shared = shared;
        a->fixed_threshold = fixed;
        return a;
      },
      [](std::size_t) { return 0; });
  RunResult r;
  r.tput = m.throughput_bps;
  r.conns = m.connections;
  r.rtx_rate = m.groups.empty() ? 0.0 : m.groups[0].retransmit_rate;
  return r;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.2): dup-ACK threshold on a reordering path");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 6 : 3;

  // Phase 1: the fleet shares its experience (threshold still 3).
  core::DupAckThresholdAdvisor shared;
  bench::WallTimer timer;
  for (int r = 0; r < runs; ++r)
    (void)run_with(&shared, 3, util::derive_seed(900, static_cast<std::uint64_t>(r)));
  std::printf("\nshared learning: %zu connections reported, reordering "
              "prevalence %.0f%%, advised threshold %d (was 3)\n",
              shared.support(kPath), shared.prevalence(kPath) * 100.0,
              shared.recommend(kPath));

  // Phase 2: fixed 3 vs advised, fresh seeds.
  util::RunningStats tput3, tputA, rtx3, rtxA;
  for (int r = 0; r < runs; ++r) {
    const auto seed = util::derive_seed(950, static_cast<std::uint64_t>(r));
    const auto fixed = run_with(nullptr, 3, seed);
    const auto advised = run_with(&shared, 0, seed);
    tput3.add(fixed.tput);
    tputA.add(advised.tput);
    rtx3.add(fixed.rtx_rate);
    rtxA.add(advised.rtx_rate);
  }

  util::TextTable t;
  t.header({"Policy", "Throughput (Mbps)", "Retransmit rate"});
  t.row({"fixed dup-ACK threshold 3",
         util::TextTable::num(tput3.mean() / 1e6, 2),
         util::TextTable::pct(rtx3.mean(), 2)});
  t.row({"Phi-advised threshold " + std::to_string(shared.recommend(kPath)),
         util::TextTable::num(tputA.mean() / 1e6, 2),
         util::TextTable::pct(rtxA.mean(), 2)});
  std::printf("\n%s", t.str().c_str());
  std::printf("\nclaim check: advised threshold cuts spurious retransmits "
              "(%s -> %s) %s throughput loss   (%.1f s)\n",
              util::TextTable::pct(rtx3.mean(), 2).c_str(),
              util::TextTable::pct(rtxA.mean(), 2).c_str(),
              tputA.mean() >= tput3.mean() * 0.98 ? "without" : "with some",
              timer.seconds());
  bench::write_csv(
      "ablation_reordering.csv",
      {"policy", "tput_bps", "rtx_rate"},
      {{"fixed3", util::TextTable::num(tput3.mean(), 0),
        util::TextTable::num(rtx3.mean(), 5)},
       {"advised", util::TextTable::num(tputA.mean(), 0),
        util::TextTable::num(rtxA.mean(), 5)}});
  bench::dump_metrics("ablation_reordering");
  return 0;
}
