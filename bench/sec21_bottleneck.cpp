// sec21_bottleneck — §2.1's open question, answered with code: "a
// measurement study with techniques such as [Katabi et al.] would be
// needed to establish whether a set of flows share a bottleneck link."
//
// Ground truth comes from the simulator: flows pinned to hops of a
// parking lot (the engine's parking-probes preset — per-hop bulk probes
// plus bursty load). Passive delay-correlation clusters the probes; we
// report pairwise precision/recall of the recovered grouping.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "flow/bottleneck.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "tcp/sender.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

struct Accuracy {
  double precision = 0;  ///< same-cluster pairs that truly share
  double recall = 0;     ///< truly-sharing pairs recovered
};

Accuracy run_case(std::size_t hops, std::size_t probes_per_hop,
                  std::uint64_t seed) {
  core::ScenarioSpec spec =
      core::presets::probe_parking_lot(hops, probes_per_hop);
  spec.seed = seed;

  flow::SharedBottleneckDetector det;
  std::vector<std::pair<std::uint64_t, std::size_t>> probes;  // id, hop
  std::function<void()> sample;  // owns the recursive sampler

  core::SetupHook setup =
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
    // The probes are the bulk senders; everything else is load.
    std::vector<tcp::TcpSender*> probe_senders;
    for (std::size_t i = 0; i < live.spec->senders.size(); ++i) {
      const core::SenderSpec& ss = live.spec->senders[i];
      if (ss.bulk_segments <= 0) continue;
      probes.emplace_back(ss.flow, static_cast<std::size_t>(ss.group));
      probe_senders.push_back(live.senders[i]);
    }
    sim::Topology* lot = live.topology;
    const util::Duration until = spec.duration;
    sample = [&det, &probes, probe_senders, lot, until, &sample] {
      for (std::size_t k = 0; k < probe_senders.size(); ++k) {
        const auto& rtt = probe_senders[k]->rtt();
        if (rtt.has_sample())
          det.record(probes[k].first, lot->scheduler().now(),
                     util::to_seconds(rtt.srtt() - rtt.min_rtt()));
      }
      if (lot->scheduler().now() < until)
        lot->scheduler().schedule_in(util::milliseconds(100), sample);
    };
    lot->scheduler().schedule_in(util::milliseconds(100), sample);
    return nullptr;
  };

  core::run_scenario_with_setup(
      spec,
      [](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
        return std::make_unique<tcp::Cubic>(tcp::CubicParams{64, 8, 0.2});
      },
      setup);

  // Pairwise accuracy of the clustering against hop ground truth.
  const auto clusters = det.cluster();
  auto same_cluster = [&](std::uint64_t a, std::uint64_t b) {
    for (const auto& c : clusters) {
      const bool ha = std::count(c.begin(), c.end(), a) > 0;
      const bool hb = std::count(c.begin(), c.end(), b) > 0;
      if (ha || hb) return ha && hb;
    }
    return false;
  };
  std::uint64_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    for (std::size_t j = i + 1; j < probes.size(); ++j) {
      const bool truth = probes[i].second == probes[j].second;
      const bool pred = same_cluster(probes[i].first, probes[j].first);
      if (pred && truth) ++tp;
      if (pred && !truth) ++fp;
      if (!pred && truth) ++fn;
    }
  }
  Accuracy acc;
  acc.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
  acc.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 1.0;
  return acc;
}

}  // namespace

int main() {
  bench::banner("Section 2.1 companion: passive shared-bottleneck detection");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 4 : 2;

  util::TextTable t;
  t.header({"Topology", "Probe flows", "Pairwise precision",
            "Pairwise recall"});
  std::vector<std::vector<std::string>> csv;
  bench::WallTimer timer;
  for (const std::size_t hops : {2u, 3u}) {
    util::RunningStats prec, rec;
    for (int r = 0; r < runs; ++r) {
      const auto acc =
          run_case(hops, 3, util::derive_seed(3000, static_cast<std::uint64_t>(r)));
      prec.add(acc.precision);
      rec.add(acc.recall);
    }
    t.row({std::to_string(hops) + "-hop parking lot",
           std::to_string(3 * hops),
           util::TextTable::pct(prec.mean(), 0),
           util::TextTable::pct(rec.mean(), 0)});
    csv.push_back({std::to_string(hops),
                   util::TextTable::num(prec.mean(), 3),
                   util::TextTable::num(rec.mean(), 3)});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf("\nreading: delay-correlation reliably groups flows behind a\n"
              "common bottleneck, validating the paper's assumption that\n"
              "(/24, minute) slice-mates can be confirmed as true sharers\n"
              "before Phi coordinates them.   (%.1f s)\n",
              timer.seconds());
  bench::write_csv("sec21_bottleneck.csv",
                   {"hops", "precision", "recall"}, csv);
  bench::dump_metrics("sec21_bottleneck");
  return 0;
}
