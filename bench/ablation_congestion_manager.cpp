// ablation_congestion_manager — Phi vs its single-host ancestor. §3.3:
// "This is akin to past proposals such as TCP Session and the Congestion
// Manager except that the prioritization happens across hosts rather than
// within a single host."
//
// Workload: one host (4 flows) sends a steady stream of short transfers
// to the same destination across the dumbbell. Three policies:
//   * autonomous       — every connection slow-starts from scratch,
//   * congestion manager — the host's flows share one congestion state,
//   * Phi              — cross-host context server with tuned parameters
//                        (what CM becomes when "host" is a fleet).
// Metric: median short-transfer completion time and aggregate goodput.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/client.hpp"
#include "phi/congestion_manager.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 4;

struct Outcome {
  double median_fct_s = 0;  ///< flow (connection) completion time
  double tput_bps = 0;
  std::int64_t conns = 0;
};

core::ScenarioConfig workload(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 4;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = 120e3;  // short transfers
  cfg.workload.mean_off_s = 0.4;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;
  return cfg;
}

/// Collects per-connection completion times via an advisor.
struct FctCollector : tcp::ConnectionAdvisor {
  util::Samples* fct;
  core::CmFlowController* cm = nullptr;  // released on completion
  tcp::ConnectionAdvisor* inner = nullptr;
  void before_connection(tcp::TcpSender& s) override {
    if (inner != nullptr) inner->before_connection(s);
  }
  void after_connection(const tcp::ConnStats& st,
                        const tcp::TcpSender& s) override {
    fct->add(st.duration_s());
    if (cm != nullptr) cm->release();
    if (inner != nullptr) inner->after_connection(st, s);
  }
};

// Keeps chained Phi advisors alive for the duration of a run.
std::vector<std::unique_ptr<core::PhiCubicAdvisor>> phis_;

Outcome run_mode(int mode, std::uint64_t seed) {
  util::Samples fct;
  auto shared = std::make_shared<core::SharedCongestionState>(
      tcp::CubicParams{65536, 2, 0.2});
  core::ContextServer server;
  server.set_path_capacity(kPath, 15e6);
  core::RecommendationTable table;
  for (int u = 0; u < 5; ++u)
    for (int n = 0; n < 6; ++n)
      table.set(core::ContextBucket{u, n},
                tcp::CubicParams{64, u >= 3 ? 8 : 32, 0.2});
  server.set_recommendations(std::move(table));

  std::vector<core::CmFlowController*> cms;
  const auto metrics = core::run_scenario_with_setup(
      workload(seed),
      [&](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
        if (mode == 1) {
          auto cm = std::make_unique<core::CmFlowController>(shared, i);
          cms.push_back(cm.get());
          return cm;
        }
        return std::make_unique<tcp::Cubic>();
      },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        sim::Scheduler* sched = &live.dumbbell->scheduler();
        return [&, sched](std::size_t i)
                   -> std::unique_ptr<tcp::ConnectionAdvisor> {
          auto col = std::make_unique<FctCollector>();
          col->fct = &fct;
          if (mode == 1 && i < cms.size()) col->cm = cms[i];
          if (mode == 2) {
            // Phi lookups install tuned Cubic per connection; chain the
            // advisor so FCTs are still collected.
            auto phi = std::make_unique<core::PhiCubicAdvisor>(
                server, kPath, i, [sched] { return sched->now(); });
            col->inner = phi.get();
            phis_.push_back(std::move(phi));
          }
          return col;
        };
      });

  Outcome out;
  out.median_fct_s = fct.median();
  out.tput_bps = metrics.throughput_bps;
  out.conns = metrics.connections;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.3): Phi vs the single-host Congestion Manager");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 6 : 3;

  const char* names[] = {"autonomous (per-conn slow start)",
                         "congestion manager (host-shared)",
                         "Phi (fleet-shared, tuned)"};
  bench::ResultTable t(
      "ablation_cm.csv",
      {"Policy", "Median FCT (s)", "Goodput (Mbps)", "Connections"},
      {"policy", "median_fct_s", "tput_bps"});
  bench::WallTimer timer;
  for (int mode = 0; mode < 3; ++mode) {
    util::RunningStats fct, tput, conns;
    for (int r = 0; r < runs; ++r) {
      phis_.clear();
      const auto o = run_mode(mode, util::derive_seed(1400, static_cast<std::uint64_t>(r)));
      fct.add(o.median_fct_s);
      tput.add(o.tput_bps);
      conns.add(static_cast<double>(o.conns));
    }
    t.row({names[mode], util::TextTable::num(fct.mean(), 2),
           util::TextTable::num(tput.mean() / 1e6, 2),
           util::TextTable::num(conns.mean(), 0)},
          {names[mode], util::TextTable::num(fct.mean(), 3),
           util::TextTable::num(tput.mean(), 0)});
  }
  t.print_and_dump();
  std::printf("\nreading: sharing congestion state shortens short-transfer\n"
              "completion times vs autonomous slow starts; Phi delivers the\n"
              "same inheritance effect across hosts (and composes with the\n"
              "sweep-tuned parameters).   (%.1f s)\n",
              timer.seconds());
  bench::dump_metrics("ablation_congestion_manager");
  return 0;
}
