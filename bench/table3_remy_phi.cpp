// table3_remy_phi — reproduces Table 3: does Phi's shared utilization
// signal help even a machine-learned congestion controller?
//
// Pipeline: train one whisker tree without the u signal (Remy) and one
// with it (Remy-Phi), then score four algorithms on the Table-3 scenario
// (15 Mbps / 150 ms dumbbell, 8 senders, exp(100 KB) on / exp(0.5 s) off):
//
//   Remy-Phi-practical — u from context-server lookups (connection grain)
//   Remy-Phi-ideal     — u live from the link monitor
//   Remy               — no shared signal
//   Cubic              — default parameters
//
// Reported: median per-sender throughput, median bottleneck queueing
// delay, median log-power objective. Expected shape: ideal > practical >
// Remy on throughput/objective; Cubic trails with higher delay.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "exec/pool.hpp"
#include "phi/scenario.hpp"
#include "remy/trainer.hpp"
#include "tcp/pcc.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioConfig table3_scenario() {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 8;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = 100e3;
  cfg.workload.mean_off_s = 0.5;
  cfg.duration = util::seconds(60);
  cfg.seed = 9100;  // held out from training seeds
  return cfg;
}

/// A hard-coded policy's row, measured identically (per-sender groups,
/// same scenario).
remy::EvalResult score_policy(const core::ScenarioConfig& scenario,
                              int runs, const core::PolicyFactory& make) {
  util::Samples tputs, qdelays, logps;
  std::vector<int> reps(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) reps[static_cast<std::size_t>(r)] = r;
  const auto metrics = exec::parallel_map(
      reps,
      [&](int r) {
        core::ScenarioConfig cfg = scenario;
        cfg.seed = util::derive_seed(scenario.seed,
                                     static_cast<std::uint64_t>(r));
        return core::run_scenario(
            cfg, make, nullptr,
            [](std::size_t i) { return static_cast<int>(i); });
      },
      bench::jobs_from_env());
  for (const auto& m : metrics) {
    qdelays.add(m.mean_queue_delay_s);
    for (const auto& g : m.groups) {
      if (g.connections > 0) {
        tputs.add(g.throughput_bps);
        if (g.throughput_bps > 0 && g.mean_rtt_s > 0)
          logps.add(core::log_power(g.throughput_bps, g.mean_rtt_s));
      }
    }
  }
  remy::EvalResult res;
  res.median_throughput_bps = tputs.median();
  res.median_queue_delay_s = qdelays.median();
  res.median_log_power = logps.median();
  return res;
}

/// Optional tree cache: PHI_TREE_DIR=<dir> loads/saves trained trees so
/// repeated bench runs (or tools/train_remy products) skip retraining.
std::optional<remy::WhiskerTree> load_tree(const std::string& name) {
  const char* dir = std::getenv("PHI_TREE_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  std::ifstream f(std::string(dir) + "/" + name);
  if (!f) return std::nullopt;
  std::stringstream ss;
  ss << f.rdbuf();
  return remy::WhiskerTree::parse(ss.str());
}

void save_tree(const std::string& name, const remy::WhiskerTree& tree) {
  const char* dir = std::getenv("PHI_TREE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream f(std::string(dir) + "/" + name);
  if (f) {
    f << tree.serialize();
    std::printf("  [cache] saved %s/%s\n", dir, name.c_str());
  }
}

remy::WhiskerTree train_or_load(const char* label, const std::string& file,
                                const remy::Trainer& trainer) {
  if (auto cached = load_tree(file)) {
    std::printf("%s: loaded %zu whiskers from cache\n", label,
                cached->size());
    return *cached;
  }
  std::printf("training %s...\n", label);
  bench::WallTimer t;
  const remy::WhiskerTree tree = trainer.train([](int round, double score) {
    std::printf("  round %2d: objective %.3f\n", round, score);
  });
  std::printf("  -> %zu whiskers in %.0f s\n", tree.size(), t.seconds());
  save_tree(file, tree);
  return tree;
}

}  // namespace

int main() {
  bench::banner("Table 3: Remy vs Remy-Phi (ideal & practical) vs Cubic");
  const bench::Scale scale = bench::scale_from_env();
  const bool full = scale == bench::Scale::kFull;
  const int eval_runs = full ? 8 : 4;

  auto make_cfg = [&](remy::SignalMode mode) {
    remy::TrainerConfig cfg = remy::TrainerConfig::table3(
        mode, util::seconds(full ? 30 : 20));
    cfg.max_rounds = full ? 24 : 10;
    cfg.runs_per_scenario = 2;
    cfg.max_whiskers = full ? 48 : 24;
    cfg.jobs = bench::jobs_from_env();
    return cfg;
  };

  const remy::Trainer remy_trainer(make_cfg(remy::SignalMode::kClassic));
  const remy::WhiskerTree remy_tree = train_or_load(
      "Remy (no shared signal)", "remy_classic.tree", remy_trainer);

  const remy::Trainer phi_trainer(make_cfg(remy::SignalMode::kPhiIdeal));
  const remy::WhiskerTree phi_tree = train_or_load(
      "Remy-Phi (with bottleneck utilization)", "remy_phi.tree",
      phi_trainer);

  const core::ScenarioConfig scenario = table3_scenario();
  std::printf("\nscoring on held-out seeds (%d runs each)...\n", eval_runs);
  const int jobs = bench::jobs_from_env();
  const auto practical = remy::Trainer::score_tree(
      phi_tree, remy::SignalMode::kPhiPractical, scenario, eval_runs, jobs);
  const auto ideal = remy::Trainer::score_tree(
      phi_tree, remy::SignalMode::kPhiIdeal, scenario, eval_runs, jobs);
  const auto classic = remy::Trainer::score_tree(
      remy_tree, remy::SignalMode::kClassic, scenario, eval_runs, jobs);
  const auto cubic = score_policy(scenario, eval_runs, [](std::size_t) {
    return std::make_unique<tcp::Cubic>();
  });
  const auto pcc = score_policy(scenario, eval_runs, [](std::size_t) {
    return std::make_unique<tcp::Pcc>();
  });

  bench::ResultTable t(
      "table3.csv",
      {"Algorithm", "Median throughput (Mbps)", "Median queueing delay (ms)",
       "Median objective log(P)"},
      {"algorithm", "median_tput_bps", "median_qdelay_ms",
       "median_log_power"});
  auto row = [&](const char* name, const remy::EvalResult& r) {
    t.row({name, util::TextTable::num(r.median_throughput_bps / 1e6, 2),
           util::TextTable::num(r.median_queue_delay_s * 1e3, 1),
           util::TextTable::num(r.median_log_power, 2)},
          {name, util::TextTable::num(r.median_throughput_bps, 0),
           util::TextTable::num(r.median_queue_delay_s * 1e3, 2),
           util::TextTable::num(r.median_log_power, 3)});
  };
  row("Remy-Phi-practical", practical);
  row("Remy-Phi-ideal", ideal);
  row("Remy", classic);
  row("Cubic", cubic);
  row("PCC-Vivace (extension)", pcc);
  t.print_and_dump();

  std::printf(
      "\npaper shape: ideal > practical > Remy on throughput/objective;\n"
      "Cubic lowest objective with the highest queueing delay.\n");

  bench::dump_metrics("table3_remy_phi");
  return 0;
}
