// ablation_multipath — the context is per *path*. On a two-hop parking
// lot where hop 0 is congested and hop 1 is nearly idle, a single global
// parameter choice must compromise; a context server keyed by path serves
// conservative parameters on the hot hop and aggressive ones on the cold
// hop. This ablation measures (a) that the server's per-path contexts
// actually diverge, and (b) the P_l gain of per-path over one-size-fits-all.
//
// Runs on the scenario engine's parking-hotcold preset; the advisors and
// context server ride in through the setup hook.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "phi/client.hpp"
#include "phi/presets.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kHot = 100;   // hop 0
constexpr core::PathKey kCold = 101;  // hop 1

struct HopMetrics {
  double tput = 0;       // bits / on-time over the hop's cross flows
  double rtt = 0;        // connection-weighted mean
  std::int64_t conns = 0;
  double power() const { return rtt > 0 ? tput / rtt : 0; }
};

struct RunOutcome {
  HopMetrics hop[2];
  core::CongestionContext ctx[2];  // server view at the end
};

/// Run the parking lot for 60 s. Mode 0: all default Cubic. Mode 1:
/// uniform tuned (one compromise setting everywhere). Mode 2: Phi
/// per-path via context-server lookups.
RunOutcome run_mode(int mode, std::uint64_t seed) {
  core::ScenarioSpec spec = core::presets::hotcold_parking_lot();
  spec.seed = seed;
  const auto& net = std::get<sim::ParkingLotConfig>(spec.topology);

  const tcp::CubicParams uniform{32, 8, 0.2};  // the global compromise

  RunOutcome out;
  std::optional<core::ContextServer> server;

  core::SetupHook setup =
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
    sim::Scheduler* sched = &live.topology->scheduler();
    server.emplace(core::ContextServerConfig{},
                   [sched] { return sched->now(); });
    server->set_path_capacity(kHot, net.hop_rate);
    server->set_path_capacity(kCold, net.hop_rate);
    core::RecommendationTable table;
    // Conservative for hot contexts, front-loaded for cold ones (the
    // fig2-style mapping, condensed to two entries).
    for (int n = 0; n < 8; ++n) {
      table.set(core::ContextBucket{4, n}, tcp::CubicParams{8, 2, 0.5});
      table.set(core::ContextBucket{3, n}, tcp::CubicParams{32, 8, 0.5});
      table.set(core::ContextBucket{0, n}, tcp::CubicParams{64, 64, 0.2});
      table.set(core::ContextBucket{1, n}, tcp::CubicParams{64, 32, 0.2});
      table.set(core::ContextBucket{2, n}, tcp::CubicParams{64, 16, 0.2});
    }
    server->set_recommendations(std::move(table));

    live.on_complete = [&] {
      out.ctx[0] = server->context(kHot);
      out.ctx[1] = server->context(kCold);
    };

    const core::ScenarioSpec& sp = *live.spec;
    return [&, sched,
            sp](std::size_t i) -> std::unique_ptr<tcp::ConnectionAdvisor> {
      const int hop = sp.senders[i].group;  // 0 hot, 1 cold, -1 long
      if (hop < 0) return nullptr;          // long flows are unmanaged
      const sim::FlowId flow = sp.senders[i].flow;
      if (mode == 2)
        return std::make_unique<core::PhiCubicAdvisor>(
            *server, hop == 0 ? kHot : kCold, flow,
            [sched] { return sched->now(); });
      // Even non-Phi modes report, so the final context is observable.
      return std::make_unique<core::ReportOnlyAdvisor>(
          *server, hop == 0 ? kHot : kCold, flow);
    };
  };

  const auto metrics = core::run_scenario_with_setup(
      spec,
      [&](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
        return std::make_unique<tcp::Cubic>(mode == 1 ? uniform
                                                      : tcp::CubicParams{});
      },
      setup);

  // Per-hop aggregation with the ablation's own (connection-weighted)
  // RTT mean, off the engine's per-sender rows.
  double bits[2] = {0, 0}, on_time[2] = {0, 0}, rtt_w[2] = {0, 0};
  for (const auto& sm : metrics.per_sender) {
    const int h = sm.group;
    if (h < 0) continue;
    bits[h] += sm.bits;
    on_time[h] += sm.on_time_s;
    rtt_w[h] += sm.rtt_mean_s * static_cast<double>(sm.connections);
    out.hop[h].conns += sm.connections;
  }
  for (int h = 0; h < 2; ++h) {
    out.hop[h].tput = on_time[h] > 0 ? bits[h] / on_time[h] : 0;
    out.hop[h].rtt = out.hop[h].conns > 0
                         ? rtt_w[h] / static_cast<double>(out.hop[h].conns)
                         : 0;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: per-path context on a two-hop parking lot");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 6 : 3;

  const char* mode_names[] = {"all-default", "uniform tuned",
                              "Phi per-path"};
  util::TextTable t;
  t.header({"Policy", "Hot-hop tput (Mbps)", "Hot power (M)",
            "Cold-hop tput (Mbps)", "Cold power (M)"});
  bench::WallTimer timer;
  double ctx_u[2] = {0, 0};
  std::vector<std::vector<std::string>> csv;
  for (int mode = 0; mode < 3; ++mode) {
    util::RunningStats hot_t, hot_p, cold_t, cold_p;
    for (int r = 0; r < runs; ++r) {
      const auto out = run_mode(mode, util::derive_seed(1200, static_cast<std::uint64_t>(r)));
      hot_t.add(out.hop[0].tput);
      hot_p.add(out.hop[0].power());
      cold_t.add(out.hop[1].tput);
      cold_p.add(out.hop[1].power());
      if (mode == 2 && r == 0) {
        ctx_u[0] = out.ctx[0].utilization;
        ctx_u[1] = out.ctx[1].utilization;
      }
    }
    t.row({mode_names[mode], util::TextTable::num(hot_t.mean() / 1e6, 2),
           util::TextTable::num(hot_p.mean() / 1e6, 2),
           util::TextTable::num(cold_t.mean() / 1e6, 2),
           util::TextTable::num(cold_p.mean() / 1e6, 2)});
    csv.push_back({mode_names[mode], util::TextTable::num(hot_t.mean(), 0),
                   util::TextTable::num(hot_p.mean(), 0),
                   util::TextTable::num(cold_t.mean(), 0),
                   util::TextTable::num(cold_p.mean(), 0)});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf("\nserver's per-path weather (Phi mode): hot u=%.2f vs cold "
              "u=%.2f — the contexts diverge, so one global setting must\n"
              "compromise while per-path lookups serve each hop its own "
              "optimum.   (%.1f s)\n",
              ctx_u[0], ctx_u[1], timer.seconds());
  bench::write_csv("ablation_multipath.csv",
                   {"policy", "hot_tput", "hot_power", "cold_tput",
                    "cold_power"},
                   csv);
  bench::dump_metrics("ablation_multipath");
  return 0;
}
