// ablation_jitterbuffer — §3.2's first example, end to end: "the jitter
// buffer size for audio-video streaming could be initialized and updated
// over time based on the shared information."
//
// A fleet of VoIP-like CBR streams crosses a bottleneck shared with
// bursty TCP traffic. Cold-start streams must guess an initial buffer
// (industry default: a fixed small depth — low latency but glitchy, or a
// fixed large depth — safe but laggy). Phi streams initialize from the
// shared jitter distribution of earlier streams on the same path:
// p98 x 1.25, clamped (the quantile is operator-tunable).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/adaptation.hpp"
#include "sim/cbr.hpp"
#include "sim/topology.hpp"
#include "tcp/app.hpp"
#include "tcp/sender.hpp"
#include "tcp/sink.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

constexpr core::PathKey kPath = 9;

struct StreamOutcome {
  std::vector<double> jitter_ms;  ///< per-frame jitter of the probe stream
};

/// One 40-second "call" across a congested dumbbell; returns the call's
/// frame jitter series.
StreamOutcome run_call(std::uint64_t seed) {
  sim::DumbbellConfig net;
  net.pairs = 6;
  net.bottleneck_rate = 20.0 * util::kMbps;
  net.rtt = util::milliseconds(80);
  sim::Dumbbell d(net);

  // Competing bursty TCP traffic on pairs 1..5 produces queue churn.
  std::vector<std::unique_ptr<tcp::TcpSender>> senders;
  std::vector<std::unique_ptr<tcp::TcpSink>> sinks;
  std::vector<std::unique_ptr<tcp::OnOffApp>> apps;
  util::Rng seeder(seed);
  for (std::size_t i = 1; i < net.pairs; ++i) {
    const sim::FlowId flow = 50 + i;
    senders.push_back(std::make_unique<tcp::TcpSender>(
        d.scheduler(), d.sender(i), d.receiver(i).id(), flow,
        std::make_unique<tcp::Cubic>(tcp::CubicParams{64, 8, 0.2})));
    sinks.push_back(std::make_unique<tcp::TcpSink>(d.scheduler(),
                                                   d.receiver(i), flow));
    tcp::OnOffConfig oc;
    oc.mean_on_bytes = 300e3;
    oc.mean_off_s = 0.8;
    apps.push_back(std::make_unique<tcp::OnOffApp>(
        d.scheduler(), *senders.back(), oc, seeder()));
    apps.back()->start();
  }

  // The call: CBR frames every 20 ms on pair 0.
  sim::CbrSource call(d.scheduler(), d.sender(0), d.receiver(0).id(), 7);
  sim::CbrReceiver rx(d.scheduler(), d.receiver(0), 7);
  call.start();
  d.net().run_until(util::seconds(40));
  call.stop();

  StreamOutcome out;
  out.jitter_ms = rx.jitter_ms();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.2): jitter-buffer initialization from shared state");
  const int calls = bench::scale_from_env() == bench::Scale::kFull ? 10 : 5;

  // Phase 1: earlier calls contribute their jitter samples to the shared
  // advisor (in deployment: via Phi reports).
  core::JitterBufferAdvisor advisor;
  bench::WallTimer timer;
  for (int c = 0; c < calls; ++c) {
    const auto outcome = run_call(2000 + static_cast<std::uint64_t>(c));
    for (const double j : outcome.jitter_ms)
      advisor.record_jitter_ms(kPath, j);
  }
  const double advised_ms = advisor.recommend_ms(kPath);
  std::printf("\nshared history: %zu frame samples -> advised initial "
              "buffer %.0f ms\n",
              advisor.support(kPath), advised_ms);

  // Phase 2: fresh calls, three initialization policies.
  const double kLowDefault = 20.0;   // latency-optimized cold start
  const double kHighDefault = 200.0; // safety-first cold start
  util::RunningStats late_low, late_high, late_adv;
  for (int c = 0; c < calls; ++c) {
    const auto outcome = run_call(2500 + static_cast<std::uint64_t>(c));
    late_low.add(sim::late_fraction(outcome.jitter_ms, kLowDefault));
    late_high.add(sim::late_fraction(outcome.jitter_ms, kHighDefault));
    late_adv.add(sim::late_fraction(outcome.jitter_ms, advised_ms));
  }

  util::TextTable t;
  t.header({"Initialization", "Buffer (ms)", "Late frames",
            "Mouth-to-ear penalty"});
  t.row({"cold start, low", util::TextTable::num(kLowDefault, 0),
         util::TextTable::pct(late_low.mean(), 2), "minimal"});
  t.row({"cold start, high", util::TextTable::num(kHighDefault, 0),
         util::TextTable::pct(late_high.mean(), 2),
         "+" + util::TextTable::num(kHighDefault - advised_ms, 0) +
             " ms vs advised"});
  t.row({"Phi-advised (shared p98)", util::TextTable::num(advised_ms, 0),
         util::TextTable::pct(late_adv.mean(), 2), "baseline"});
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nreading: the advised buffer matches the high cold start's glitch\n"
      "protection at a fraction of its added latency — informed adaptation\n"
      "without any cooperation from the majority (FIFO network unchanged).\n"
      "(%.1f s)\n",
      timer.seconds());

  bench::write_csv(
      "ablation_jitterbuffer.csv",
      {"policy", "buffer_ms", "late_fraction"},
      {{"low", util::TextTable::num(kLowDefault, 0),
        util::TextTable::num(late_low.mean(), 4)},
       {"high", util::TextTable::num(kHighDefault, 0),
        util::TextTable::num(late_high.mean(), 4)},
       {"advised", util::TextTable::num(advised_ms, 0),
        util::TextTable::num(late_adv.mean(), 4)}});
  bench::dump_metrics("ablation_jitterbuffer");
  return 0;
}
