// ablation_priority — §3.3: prioritization across flows. One entity runs
// four flows with weights 4:2:1:1 over a shared bottleneck using
// ensemble-TCP-friendly weighted AIMD. Checks (a) throughput splits
// roughly by weight, and (b) the weighted ensemble takes about the same
// aggregate share as four standard flows when competing against a
// background of standard senders.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/coordination.hpp"
#include "phi/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioConfig long_running(std::size_t pairs, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = pairs;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = 1e13;  // effectively infinite transfers
  cfg.workload.start_with_off = false;
  cfg.duration = util::seconds(90);
  cfg.warmup = util::seconds(10);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("Ablation (3.3): ensemble-friendly flow prioritization");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 6 : 3;

  const std::vector<core::FlowSpec> specs = {
      {0, 4.0}, {1, 2.0}, {2, 1.0}, {3, 1.0}};
  const auto alloc = core::allocate_priorities(specs);
  std::printf("\nallocations (ensemble equivalents = %.2f for 4 flows):\n",
              core::ensemble_equivalents(alloc));
  for (const auto& a : alloc)
    std::printf("  flow %llu: weight %.1f -> gain %.3f, expected share %.0f%%\n",
                static_cast<unsigned long long>(a.id), a.weight,
                a.increase_gain, a.expected_share * 100.0);

  // Part A: the 4 weighted flows alone. Shares should track weights.
  util::RunningStats share[4];
  for (int r = 0; r < runs; ++r) {
    const auto m = core::run_scenario(
        long_running(4, util::derive_seed(600, static_cast<std::uint64_t>(r))),
        [&](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
          return std::make_unique<core::WeightedAimd>(
              alloc[i].increase_gain, alloc[i].decrease_factor);
        },
        nullptr, [](std::size_t i) { return static_cast<int>(i); });
    double total = 0;
    for (const auto& g : m.groups) total += g.throughput_bps;
    for (const auto& g : m.groups)
      if (total > 0)
        share[g.group].add(g.throughput_bps / total);
  }

  util::TextTable t;
  t.header({"Flow", "Weight", "Expected share", "Measured share"});
  for (std::size_t i = 0; i < 4; ++i) {
    t.row({std::to_string(i), util::TextTable::num(specs[i].weight, 1),
           util::TextTable::pct(alloc[i].expected_share, 0),
           util::TextTable::pct(share[i].mean(), 0)});
  }
  std::printf("\nPart A - weighted ensemble alone:\n%s", t.str().c_str());

  // Part B: friendliness. 4 weighted flows + 4 standard AIMD background
  // flows vs. 8 standard flows: the ensemble's aggregate share should be
  // near 50% either way.
  util::RunningStats ensemble_share, control_share;
  for (int r = 0; r < runs; ++r) {
    const auto seed = util::derive_seed(700, static_cast<std::uint64_t>(r));
    const auto mixed = core::run_scenario(
        long_running(8, seed),
        [&](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
          if (i < 4)
            return std::make_unique<core::WeightedAimd>(
                alloc[i].increase_gain, alloc[i].decrease_factor);
          return std::make_unique<core::WeightedAimd>(1.0, 0.5);
        },
        nullptr, [](std::size_t i) { return i < 4 ? 0 : 1; });
    const auto control = core::run_scenario(
        long_running(8, seed),
        [](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
          return std::make_unique<core::WeightedAimd>(1.0, 0.5);
        },
        nullptr, [](std::size_t i) { return i < 4 ? 0 : 1; });
    auto group_share = [](const core::ScenarioMetrics& m, int group) {
      double total = 0, g0 = 0;
      for (const auto& g : m.groups) {
        total += g.throughput_bps;
        if (g.group == group) g0 += g.throughput_bps;
      }
      return total > 0 ? g0 / total : 0.0;
    };
    ensemble_share.add(group_share(mixed, 0));
    control_share.add(group_share(control, 0));
  }
  std::printf("\nPart B - friendliness vs background traffic:\n"
              "  weighted ensemble aggregate share: %s\n"
              "  4 standard flows (control) share:  %s\n"
              "  (close together = ensemble is TCP-friendly)\n",
              util::TextTable::pct(ensemble_share.mean(), 1).c_str(),
              util::TextTable::pct(control_share.mean(), 1).c_str());

  bench::write_csv(
      "ablation_priority.csv",
      {"flow", "weight", "expected_share", "measured_share"},
      {{"0", "4", util::TextTable::num(alloc[0].expected_share, 3),
        util::TextTable::num(share[0].mean(), 3)},
       {"1", "2", util::TextTable::num(alloc[1].expected_share, 3),
        util::TextTable::num(share[1].mean(), 3)},
       {"2", "1", util::TextTable::num(alloc[2].expected_share, 3),
        util::TextTable::num(share[2].mean(), 3)},
       {"3", "1", util::TextTable::num(alloc[3].expected_share, 3),
        util::TextTable::num(share[3].mean(), 3)}});
  bench::dump_metrics("ablation_priority");
  return 0;
}
