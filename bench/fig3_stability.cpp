// fig3_stability — reproduces Figure 3: is the optimal parameter setting a
// statistical fluke? Leave-one-out validation: pick the "optimal" setting
// from one run, evaluate it on the remaining n-1 runs. If the gains
// persist, the setting generalizes (and a Phi context server can safely
// hand it to new connections).
#include <cstdio>

#include "bench_common.hpp"
#include "phi/presets.hpp"
#include "phi/sweep.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioSpec workload(std::size_t pairs) {
  core::ScenarioSpec cfg = core::presets::paper_dumbbell(pairs);
  cfg.seed = 21;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("Figure 3: stability of the optimal parameter setting");
  const bench::Scale scale = bench::scale_from_env();
  const int runs = scale == bench::Scale::kFull ? 8 : 4;
  core::SweepSpec grid = scale == bench::Scale::kFull
                             ? core::SweepSpec::paper()
                             : core::SweepSpec::coarse();
  grid.jobs = bench::jobs_from_env();

  util::TextTable t;
  t.header({"Workload", "Setting", "P_l (M)", "Tput (Mbps)", "Qdelay (ms)",
            "vs default"});
  std::vector<std::vector<std::string>> csv;

  for (const std::size_t pairs : {4u, 8u, 16u}) {
    bench::WallTimer timer;
    const core::SweepResult sweep =
        core::run_cubic_sweep(workload(pairs), grid, runs);
    const core::StabilityResult st = core::leave_one_out(sweep);

    auto row = [&](const char* label, double score, double tput, double qd) {
      const double gain =
          st.default_score > 0 ? score / st.default_score : 0.0;
      t.row({std::to_string(pairs) + " senders", label,
             util::TextTable::num(score / 1e6, 2),
             util::TextTable::num(tput / 1e6, 2),
             util::TextTable::num(qd * 1e3, 1),
             "x" + util::TextTable::num(gain, 2)});
      csv.push_back({std::to_string(pairs), label,
                     util::TextTable::num(score, 0),
                     util::TextTable::num(tput, 0),
                     util::TextTable::num(qd * 1e3, 2)});
    };
    row("default", st.default_score, st.default_throughput_bps,
        st.default_qdelay_s);
    row("optimal (per-run)", st.oracle_score, st.oracle_throughput_bps,
        st.oracle_qdelay_s);
    row("common (leave-one-out)", st.common_score,
        st.common_throughput_bps, st.common_qdelay_s);
    std::printf("  %zu senders: chosen settings per held-out run:", pairs);
    for (const auto& p : st.chosen) std::printf("  [%s]", p.str().c_str());
    std::printf("   (%.1f s)\n", timer.seconds());
  }

  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nClaim check: the leave-one-out ('common') score should stay close\n"
      "to the per-run optimal and clearly above the default -> the gains\n"
      "are not a fluke.\n");
  bench::write_csv("fig3.csv",
                   {"senders", "setting", "power_l", "tput_bps", "qdelay_ms"},
                   csv);
  bench::dump_metrics("fig3_stability");
  return 0;
}
