// sec21_sharing — reproduces the §2.1 measurement: how many flows share a
// WAN path per (/24 subnet, 1-minute) slice under IPFIX 1-in-4096 packet
// sampling? Paper headline: 50% of (sampled) flows share with at least 5
// other flows; 12% share with at least 100 — and true (unsampled) sharing
// is much higher.
#include <cstdio>

#include "bench_common.hpp"
#include "flow/heavy_hitters.hpp"
#include "flow/tracegen.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

int main() {
  bench::banner("Section 2.1: opportunity for sharing (IPFIX analysis)");
  const bench::Scale scale = bench::scale_from_env();

  // Volume calibrated so the sampled-sharing quantiles land near the
  // paper's headline numbers (a large cloud's egress is enormous: even
  // after 1-in-4096 sampling, popular /24s see hundreds of flows/min).
  flow::TraceConfig cfg;
  cfg.minutes = scale == bench::Scale::kFull ? 60 : 15;
  cfg.flows_per_minute = 6e5;
  cfg.subnets = 20000;
  cfg.zipf_s = 1.09;
  cfg.sampling = 4096;

  bench::WallTimer timer;
  const flow::SharingAnalysis a = flow::analyze_trace(cfg);

  std::printf("\ntrace: %llu flows, %llu packets over %d minutes; "
              "%llu packets sampled (1 in %llu), %llu flows observed\n",
              static_cast<unsigned long long>(a.total_flows),
              static_cast<unsigned long long>(a.total_packets), cfg.minutes,
              static_cast<unsigned long long>(a.sampled_packets),
              static_cast<unsigned long long>(cfg.sampling),
              static_cast<unsigned long long>(a.observed_flows));

  util::TextTable t;
  t.header({"Share slice with >= k others", "sampled flows", "true flows"});
  std::vector<std::vector<std::string>> csv;
  for (const std::int64_t k : {1, 5, 10, 50, 100, 500}) {
    t.row({"k = " + std::to_string(k),
           util::TextTable::pct(a.sampled_sharing.fraction_at_least(k), 1),
           util::TextTable::pct(a.true_sharing.fraction_at_least(k), 1)});
    csv.push_back(
        {std::to_string(k),
         util::TextTable::num(a.sampled_sharing.fraction_at_least(k), 4),
         util::TextTable::num(a.true_sharing.fraction_at_least(k), 4)});
  }
  std::printf("\n%s", t.str().c_str());

  std::printf(
      "\npaper headline: ~50%% of sampled flows share with >= 5 others;\n"
      "~12%% share with >= 100. measured: %.0f%% and %.0f%%.\n"
      "true sharing without sub-sampling is much higher (>= 5: %.0f%%).\n",
      a.sampled_sharing.fraction_at_least(5) * 100.0,
      a.sampled_sharing.fraction_at_least(100) * 100.0,
      a.true_sharing.fraction_at_least(5) * 100.0);
  std::printf("(%.1f s)\n", timer.seconds());

  // Traffic concentration (the §1 "five computers" premise): which
  // destination /24s would a provider target with context servers first?
  // Space-Saving over the same Zipf flow stream, in bounded memory.
  {
    util::Rng rng(cfg.seed);
    const util::ZipfSampler zipf(cfg.subnets, cfg.zipf_s);
    flow::SpaceSaving<std::size_t> hh(1000);
    for (int i = 0; i < 500000; ++i) hh.add(zipf(rng));
    std::printf("\ntraffic concentration across %zu /24s "
                "(Space-Saving, 1000 counters):\n",
                cfg.subnets);
    for (const std::size_t k : {5u, 50u, 500u}) {
      std::printf("  top %-4zu subnets carry >= %s of flows\n", k,
                  util::TextTable::pct(hh.top_share(k), 1).c_str());
    }
  }

  bench::write_csv("sec21.csv", {"k", "sampled_frac", "true_frac"}, csv);
  bench::dump_metrics("sec21_sharing");
  return 0;
}
