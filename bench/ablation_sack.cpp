// ablation_sack — how much of the default-parameter penalty is recovery
// machinery rather than congestion behaviour? The paper's ns-2 senders
// were SACK-less; modern stacks run SACK. This ablation re-runs the
// Figure-2b-style workload with both transports, with default and tuned
// Cubic parameters, asking whether Phi's tuning gains survive a smarter
// recovery layer (they should: the overshoot still burns queueing delay
// and loss even when the retransmissions are surgical).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "phi/scenario.hpp"
#include "tcp/sender.hpp"
#include "tcp/sink.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

struct Row {
  double tput = 0;
  double qdelay = 0;
  double loss = 0;
  std::uint64_t timeouts = 0;
  double power_l = 0;
};

Row run_case(bool sack, tcp::CubicParams params, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.net.pairs = 16;
  cfg.net.bottleneck_rate = 15.0 * util::kMbps;
  cfg.net.rtt = util::milliseconds(150);
  cfg.workload.mean_on_bytes = 500e3;
  cfg.workload.mean_off_s = 2.0;
  cfg.duration = util::seconds(60);
  cfg.seed = seed;

  // SACK needs both ends enabled: use the setup hook to flip the sinks.
  const auto m = core::run_scenario_with_setup(
      cfg,
      [params](std::size_t) { return std::make_unique<tcp::Cubic>(params); },
      [&](core::LiveScenario& live) -> core::AdvisorFactory {
        if (sack) {
          for (auto* s : live.senders) s->set_sack(true);
          for (auto* s : live.sinks) s->set_sack(true);
        }
        return nullptr;
      });
  Row r;
  r.tput = m.throughput_bps;
  r.qdelay = m.mean_queue_delay_s;
  r.loss = m.loss_rate;
  r.timeouts = m.timeouts;
  r.power_l = m.power_l();
  return r;
}

}  // namespace

int main() {
  bench::banner("Ablation: does Phi's tuning survive SACK recovery?");
  const int runs = bench::scale_from_env() == bench::Scale::kFull ? 8 : 4;

  const tcp::CubicParams tuned{32, 8, 0.8};  // the Fig.-2b-style optimum
  util::TextTable t;
  t.header({"Transport", "Params", "Tput (Mbps)", "Qdelay (ms)", "Loss",
            "Timeouts", "P_l (M)"});
  std::vector<std::vector<std::string>> csv;
  bench::WallTimer timer;
  double gain[2] = {0, 0};
  for (const bool sack : {false, true}) {
    Row avg_default{}, avg_tuned{};
    for (int r = 0; r < runs; ++r) {
      const auto seed = util::derive_seed(1900, static_cast<std::uint64_t>(r));
      const Row d = run_case(sack, tcp::CubicParams{}, seed);
      const Row u = run_case(sack, tuned, seed);
      avg_default.tput += d.tput / runs;
      avg_default.qdelay += d.qdelay / runs;
      avg_default.loss += d.loss / runs;
      avg_default.timeouts += d.timeouts;
      avg_default.power_l += d.power_l / runs;
      avg_tuned.tput += u.tput / runs;
      avg_tuned.qdelay += u.qdelay / runs;
      avg_tuned.loss += u.loss / runs;
      avg_tuned.timeouts += u.timeouts;
      avg_tuned.power_l += u.power_l / runs;
    }
    const char* tname = sack ? "SACK" : "NewReno";
    auto row = [&](const char* label, const Row& r) {
      t.row({tname, label, util::TextTable::num(r.tput / 1e6, 2),
             util::TextTable::num(r.qdelay * 1e3, 1),
             util::TextTable::pct(r.loss, 2), std::to_string(r.timeouts),
             util::TextTable::num(r.power_l / 1e6, 2)});
      csv.push_back({tname, label, util::TextTable::num(r.tput, 0),
                     util::TextTable::num(r.qdelay * 1e3, 2),
                     util::TextTable::num(r.loss, 5),
                     std::to_string(r.timeouts)});
    };
    row("default", avg_default);
    row("phi-tuned", avg_tuned);
    gain[sack ? 1 : 0] =
        avg_default.power_l > 0 ? avg_tuned.power_l / avg_default.power_l
                                : 0;
  }
  std::printf("\n%s", t.str().c_str());
  // Receive-side view across all cases, from the tcp.sink.* counters:
  // how much of the retransmission traffic was spurious by the time it
  // reached the receiver. (Reads 0 in PHI_TELEMETRY_OFF builds.)
  {
    const auto received =
        telemetry::registry().counter("tcp.sink.packets_received").value();
    const auto dups =
        telemetry::registry().counter("tcp.sink.duplicates").value();
    std::printf("\nsink duplicate rate: %.4f (%llu of %llu delivered)\n",
                received > 0 ? static_cast<double>(dups) /
                                   static_cast<double>(received)
                             : 0.0,
                static_cast<unsigned long long>(dups),
                static_cast<unsigned long long>(received));
  }
  std::printf("\ntuned/default P_l gain: NewReno x%.2f, SACK x%.2f —\n"
              "smarter recovery does not substitute for knowing the network\n"
              "weather before the first packet.   (%.1f s)\n",
              gain[0], gain[1], timer.seconds());
  bench::write_csv("ablation_sack.csv",
                   {"transport", "params", "tput_bps", "qdelay_ms", "loss",
                    "timeouts"},
                   csv);
  bench::dump_metrics("ablation_sack");
  return 0;
}
