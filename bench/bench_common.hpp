// bench_common.hpp — shared plumbing for the paper-reproduction benches:
// quick/full scaling via PHI_BENCH_SCALE, CSV dumps via PHI_BENCH_OUT,
// and wall-clock reporting.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace phi::bench {

enum class Scale { kQuick, kFull };

/// PHI_BENCH_SCALE=full selects the paper-sized grids/run counts;
/// the default "quick" keeps every bench in tens of seconds on one core.
inline Scale scale_from_env() {
  const char* s = std::getenv("PHI_BENCH_SCALE");
  return (s != nullptr && std::string(s) == "full") ? Scale::kFull
                                                    : Scale::kQuick;
}

inline const char* scale_name(Scale s) {
  return s == Scale::kFull ? "full" : "quick";
}

/// Directory for CSV artifacts; PHI_BENCH_OUT overrides, empty disables.
inline std::string out_dir() {
  const char* o = std::getenv("PHI_BENCH_OUT");
  std::string dir = o != nullptr ? o : "bench_results";
  if (dir.empty()) return dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return ec ? std::string{} : dir;
}

inline void write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  const std::string dir = out_dir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + name;
  if (util::write_csv(path, header, rows)) {
    std::printf("  [csv] %s (%zu rows)\n", path.c_str(), rows.size());
  }
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const char* title) {
  std::printf("\n================================================================\n"
              "%s   [scale=%s]\n"
              "================================================================\n",
              title, scale_name(scale_from_env()));
}

}  // namespace phi::bench
