// bench_common.hpp — shared plumbing for the paper-reproduction benches:
// quick/full scaling via PHI_BENCH_SCALE, CSV dumps via PHI_BENCH_OUT,
// and wall-clock reporting.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace phi::bench {

enum class Scale { kQuick, kFull };

/// PHI_BENCH_SCALE=full selects the paper-sized grids/run counts;
/// the default "quick" keeps every bench in tens of seconds on one core.
/// Anything else is a typo that would otherwise silently run quick (and
/// ruin an overnight "ful" run), so it aborts loudly instead.
inline Scale scale_from_env() {
  const char* s = std::getenv("PHI_BENCH_SCALE");
  if (s == nullptr || *s == '\0' || std::string(s) == "quick")
    return Scale::kQuick;
  if (std::string(s) == "full") return Scale::kFull;
  std::fprintf(stderr,
               "PHI_BENCH_SCALE='%s' is not recognized; use 'quick' or "
               "'full' (unset defaults to quick)\n",
               s);
  std::exit(2);
}

inline const char* scale_name(Scale s) {
  return s == Scale::kFull ? "full" : "quick";
}

/// PHI_BENCH_JOBS caps the parallelism of every bench that runs
/// independent simulations (sweeps, repetitions, trainer evaluations):
/// unset or 0 = one job per hardware thread, 1 = serial. Results are
/// bit-identical for any value — the exec::Pool contract — so this knob
/// only trades wall-clock against the rest of the machine. Non-numeric
/// or negative values abort loudly rather than silently meaning 0.
inline int jobs_from_env() {
  const char* j = std::getenv("PHI_BENCH_JOBS");
  if (j == nullptr || *j == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(j, &end, 10);
  if (end == j || *end != '\0' || v < 0 || v > 4096) {
    std::fprintf(stderr,
                 "PHI_BENCH_JOBS='%s' is not a job count; use an integer "
                 ">= 0 (0 or unset = one job per hardware thread)\n",
                 j);
    std::exit(2);
  }
  return static_cast<int>(v);
}

/// Directory for CSV artifacts; PHI_BENCH_OUT overrides, empty disables.
inline std::string out_dir() {
  const char* o = std::getenv("PHI_BENCH_OUT");
  std::string dir = o != nullptr ? o : "bench_results";
  if (dir.empty()) return dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return ec ? std::string{} : dir;
}

inline void write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  const std::string dir = out_dir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + name;
  if (util::write_csv(path, header, rows)) {
    std::printf("  [csv] %s (%zu rows)\n", path.c_str(), rows.size());
  }
}

/// Percentile of a sample set (nearest-rank on a copy; p in [0, 100]).
/// The common reporting primitive the per-bench helpers used to re-derive.
inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

inline double median(std::vector<double> v) {
  return percentile(std::move(v), 50.0);
}

/// Console table + CSV artifact fed from one row stream — replaces the
/// parallel util::TextTable and raw csv-row vectors every bench used to
/// maintain by hand. `row()` takes the display cells; pass distinct
/// `csv` cells when the artifact wants different units/precision than
/// the console (the common case: "1.0 %" on screen, "0.010" on disk).
class ResultTable {
 public:
  ResultTable(std::string csv_name, std::vector<std::string> header,
              std::vector<std::string> csv_header = {})
      : csv_name_(std::move(csv_name)),
        csv_header_(csv_header.empty() ? header : std::move(csv_header)) {
    table_.header(std::move(header));
  }

  void row(std::vector<std::string> display,
           std::vector<std::string> csv = {}) {
    csv_rows_.push_back(csv.empty() ? display : std::move(csv));
    table_.row(std::move(display));
  }

  /// Print the aligned table and write the CSV artifact (if enabled).
  void print_and_dump() const {
    std::printf("\n%s", table_.str().c_str());
    write_csv(csv_name_, csv_header_, csv_rows_);
  }

  std::size_t rows() const noexcept { return table_.rows(); }

 private:
  std::string csv_name_;
  std::vector<std::string> csv_header_;
  util::TextTable table_;
  std::vector<std::vector<std::string>> csv_rows_;
};

/// Peak resident-set size of this process so far, in bytes (Linux
/// reports ru_maxrss in KiB). 0 when the kernel won't say.
inline long long peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<long long>(ru.ru_maxrss) * 1024;
}

namespace detail {
/// Extra run-provenance entries for the _run.json sidecar, keyed by
/// name; values are raw JSON (object, array, string — caller's choice).
inline std::vector<std::pair<std::string, std::string>>& run_info() {
  static std::vector<std::pair<std::string, std::string>> v;
  return v;
}
}  // namespace detail

/// Attach one entry to the `info` object of the _run.json sidecar that
/// dump_metrics writes. `raw_json_value` is embedded verbatim (so pass
/// valid JSON: "\"text\"", a number, or an object). Repeated keys:
/// last call wins. The sidecar is provenance, not a compared artifact,
/// so run-shape details (e.g. the generated topology) belong here.
inline void set_run_info(const std::string& key,
                         const std::string& raw_json_value) {
  for (auto& kv : detail::run_info()) {
    if (kv.first == key) {
      kv.second = raw_json_value;
      return;
    }
  }
  detail::run_info().emplace_back(key, raw_json_value);
}

namespace detail {
/// Static-init anchor: lets dump_metrics report a "total" phase for
/// benches that never mark explicit phases.
inline const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

struct PhaseAccum {
  std::vector<std::pair<std::string, double>> done;
  std::string current;
  std::chrono::steady_clock::time_point started;
};
inline PhaseAccum& phase_accum() {
  static PhaseAccum a;
  return a;
}
}  // namespace detail

/// Begin (or switch to) a named wall-clock phase — "setup", "run",
/// "export" by convention. dump_metrics() closes the open phase and
/// writes every phase's duration into the _run.json sidecar, so a slow
/// bench shows where the wall-clock went without a profiler.
inline void phase(const char* name) {
  auto& a = detail::phase_accum();
  const auto now = std::chrono::steady_clock::now();
  if (!a.current.empty()) {
    a.done.emplace_back(
        a.current, std::chrono::duration<double>(now - a.started).count());
  }
  a.current = name != nullptr ? name : "";
  a.started = now;
}

/// Dump the global metric registry next to the CSV artifacts as
/// `<bench>_metrics.json` (plus the Prometheus text form). Call once at
/// the end of a bench so every ablation leaves a uniform machine-readable
/// record of what the simulation actually did (packets, drops,
/// retransmits, faults fired, ...). Compiled-out telemetry still writes
/// the (empty) artifacts, so downstream tooling never misses a file.
inline void dump_metrics(const std::string& bench_name) {
  const std::string dir = out_dir();
  if (dir.empty()) return;
  const std::string json = dir + "/" + bench_name + "_metrics.json";
  const std::string prom = dir + "/" + bench_name + "_metrics.prom";
  if (telemetry::registry().write_json(json) &&
      telemetry::registry().write_prometheus(prom)) {
    std::printf("  [metrics] %s (+ .prom)\n", json.c_str());
  }
  // Run provenance goes in a sidecar, NOT into the metrics/CSV artifacts:
  // those must stay byte-identical across jobs values (the determinism
  // check diffs them), while the sidecar records how this run was made.
  std::FILE* f = std::fopen((dir + "/" + bench_name + "_run.json").c_str(),
                            "w");
  if (f != nullptr) {
    // Both the resolved settings and the raw environment values (the
    // latter are validated at startup, so they embed safely).
    const char* scale_env = std::getenv("PHI_BENCH_SCALE");
    const char* jobs_env = std::getenv("PHI_BENCH_JOBS");
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"scale\":\"%s\",\"jobs\":%d,"
                 "\"scale_env\":\"%s\",\"jobs_env\":\"%s\"",
                 bench_name.c_str(), scale_name(scale_from_env()),
                 jobs_from_env(), scale_env != nullptr ? scale_env : "",
                 jobs_env != nullptr ? jobs_env : "");
    // Close the open phase (if any) and record where the wall-clock
    // went, plus the process's memory high-water mark. Benches that
    // never mark phases still get a "total" since process start.
    phase(nullptr);
    auto& phases = detail::phase_accum().done;
    if (phases.empty()) {
      phases.emplace_back(
          "total", std::chrono::duration<double>(
                       std::chrono::steady_clock::now() -
                       detail::g_process_start)
                       .count());
    }
    std::fprintf(f, ",\"phases\":{");
    for (std::size_t i = 0; i < phases.size(); ++i) {
      std::fprintf(f, "%s\"%s\":%.3f", i > 0 ? "," : "",
                   phases[i].first.c_str(), phases[i].second);
    }
    std::fprintf(f, "},\"peak_rss_bytes\":%lld", peak_rss_bytes());
    const auto& info = detail::run_info();
    if (!info.empty()) {
      std::fprintf(f, ",\"info\":{");
      for (std::size_t i = 0; i < info.size(); ++i) {
        std::fprintf(f, "%s\"%s\":%s", i > 0 ? "," : "",
                     info[i].first.c_str(), info[i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const char* title) {
  std::printf("\n================================================================\n"
              "%s   [scale=%s jobs=%d]\n"
              "================================================================\n",
              title, scale_name(scale_from_env()), jobs_from_env());
}

}  // namespace phi::bench
