// fig2_cubic_sweep — reproduces Tables 1-2 and Figures 2a/2b/2c of the
// paper: sweep TCP Cubic's (initial_ssthresh, windowInit_, beta) over the
// Figure-1 dumbbell at low utilization (2a), high utilization (2b), and
// with 100 long-running connections (2c, beta-only), reporting throughput,
// bottleneck queueing delay and loss for the default vs. optimal settings.
#include <cstdio>

#include "bench_common.hpp"
#include "phi/presets.hpp"
#include "phi/sweep.hpp"
#include "util/table.hpp"

using namespace phi;

namespace {

core::ScenarioSpec fig2_base(std::size_t pairs, double on_bytes,
                             double off_s) {
  core::ScenarioSpec cfg = core::presets::paper_dumbbell(pairs);
  cfg.workload.mean_on_bytes = on_bytes;
  cfg.workload.mean_off_s = off_s;
  cfg.seed = 11;
  return cfg;
}

void print_tables_1_and_2() {
  util::TextTable t1;
  t1.header({"Parameter", "Default Value"});
  t1.row({"initial_ssthresh", "65536 segments (arbitrarily large)"});
  t1.row({"windowInit_", "2 segments"});
  t1.row({"beta", "0.2"});
  std::printf("\nTable 1: Default settings of the TCP Cubic parameters\n%s",
              t1.str().c_str());

  util::TextTable t2;
  t2.header({"Parameter", "Range", "Increment"});
  t2.row({"initial_ssthresh", "2 - 256 segments", "x 2"});
  t2.row({"windowInit_", "2 - 256 segments", "x 2"});
  t2.row({"beta", "0.1 - 0.9", "+ 0.1"});
  std::printf("\nTable 2: Range of parameter sweep in TCP Cubic-Phi\n%s",
              t2.str().c_str());
}

std::vector<std::string> point_row(const char* label,
                                   const core::SweepPoint& p) {
  return {label,
          p.params.str(),
          util::TextTable::num(p.mean.throughput_bps / 1e6, 2),
          util::TextTable::num(p.mean.mean_queue_delay_s * 1e3, 1),
          util::TextTable::pct(p.mean.loss_rate, 2),
          util::TextTable::num(p.mean.utilization, 2),
          util::TextTable::num(p.score / 1e6, 2)};
}

void run_figure(const char* fig, const char* title,
                const core::ScenarioSpec& cfg, const core::SweepSpec& spec,
                int runs) {
  std::printf("\n--- Figure %s: %s ---\n", fig, title);
  bench::WallTimer timer;
  const core::SweepResult sweep = core::run_cubic_sweep(cfg, spec, runs);

  util::TextTable t;
  t.header({"Setting", "Parameters", "Tput (Mbps)", "Qdelay (ms)", "Loss",
            "Util", "P_l (M)"});
  t.row(point_row("default", sweep.default_point()));
  t.row(point_row("optimal", sweep.best()));

  // A few representative non-optimal settings, for the scatter's shape.
  std::size_t shown = 0;
  for (std::size_t i = 0; i < sweep.points.size() && shown < 4; ++i) {
    if (i == sweep.best_index || i == sweep.default_index) continue;
    if (i % (sweep.points.size() / 4 + 1) != 0) continue;
    t.row(point_row("other", sweep.points[i]));
    ++shown;
  }
  std::printf("%s", t.str().c_str());

  const auto& d = sweep.default_point().mean;
  const auto& b = sweep.best().mean;
  std::printf(
      "  optimal vs default: throughput x%.2f, qdelay x%.2f, loss %s -> %s\n",
      b.throughput_bps / (d.throughput_bps > 0 ? d.throughput_bps : 1),
      d.mean_queue_delay_s > 0 ? b.mean_queue_delay_s / d.mean_queue_delay_s
                               : 0.0,
      util::TextTable::pct(d.loss_rate, 2).c_str(),
      util::TextTable::pct(b.loss_rate, 2).c_str());
  std::printf("  (%zu settings x %d runs in %.1f s)\n", sweep.points.size(),
              runs, timer.seconds());

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : sweep.points) {
    rows.push_back({std::to_string(p.params.initial_ssthresh),
                    std::to_string(p.params.window_init),
                    util::TextTable::num(p.params.beta, 1),
                    util::TextTable::num(p.mean.throughput_bps, 0),
                    util::TextTable::num(p.mean.mean_queue_delay_s * 1e3, 2),
                    util::TextTable::num(p.mean.loss_rate, 5),
                    util::TextTable::num(p.mean.utilization, 3),
                    util::TextTable::num(p.score, 0)});
  }
  bench::write_csv(std::string("fig2") + fig + ".csv",
                   {"ssthresh", "winit", "beta", "tput_bps", "qdelay_ms",
                    "loss", "util", "power_l"},
                   rows);
}

}  // namespace

int main() {
  bench::banner("Figures 2a/2b/2c + Tables 1-2: Cubic parameter sweeps");
  const bench::Scale scale = bench::scale_from_env();
  const int runs = scale == bench::Scale::kFull ? 8 : 4;
  core::SweepSpec grid = scale == bench::Scale::kFull
                             ? core::SweepSpec::paper()
                             : core::SweepSpec::coarse();
  grid.jobs = bench::jobs_from_env();

  print_tables_1_and_2();

  run_figure("a", "low link utilization (4 on/off senders, 500 KB / 2 s)",
             fig2_base(4, 500e3, 2.0), grid, runs);
  run_figure("b", "high link utilization (16 on/off senders, 500 KB / 2 s)",
             fig2_base(16, 500e3, 2.0), grid, runs);

  // Figure 2c: 100 long-running connections; only beta matters.
  core::ScenarioSpec longrun = fig2_base(100, 1e13, 1.0);
  longrun.workload.start_with_off = false;
  longrun.duration = util::seconds(60);
  core::SweepSpec beta_grid = core::SweepSpec::beta_only();
  beta_grid.jobs = grid.jobs;
  run_figure("c", "100 long-running connections (beta sweep)", longrun,
             beta_grid, scale == bench::Scale::kFull ? 4 : 2);

  bench::dump_metrics("fig2_cubic_sweep");
  return 0;
}
